//! Live-session repair: make-before-break segment recomposition.
//!
//! When a fault degrades a live path session (its broken segment's
//! commitments released, a ticket opened in the
//! [`RepairLedger`](acp_model::repair::RepairLedger)), the
//! [`RepairPlanner`] re-probes replacements for *just the broken hops*
//! instead of tearing the whole session down:
//!
//! 1. **Sub-request derivation** — the broken span `[lo, hi]` becomes a
//!    path sub-request over its functions, carrying the residual QoS
//!    budget (the end-to-end requirement minus what the healthy prefix
//!    and suffix already consume) and the original rates, resources, and
//!    placement constraints.
//! 2. **Segment probing** — the sub-request runs through the existing
//!    two-phase probing machinery ([`compose_with_mode_in`]): transient
//!    leases, per-hop qualification, φ-optimal selection, commit. The
//!    mini-session's resources are now *held* alongside the healthy
//!    remainder — make-before-break, never double-committed (the broken
//!    segment released its commitments at degrade time).
//! 3. **Boundary bridging** — the virtual paths stitching the healthy
//!    anchors to the new segment are reserved transiently under the
//!    mini-request, so splice-time promotion is the standard two-phase
//!    lease promotion.
//! 4. **Splice** — [`StreamSystem::splice_repair`] re-validates Eq. 2/3
//!    end-to-end on the spliced composition, absorbs the mini-session,
//!    promotes the boundary holds, and settles the ticket as repaired.
//!
//! Any failure dismantles the mini-session and its leases and returns
//! the ticket to `Degraded`; the caller owns the retry budget and the
//! repair-vs-abandon policy. Non-path sessions never reach the planner:
//! the degrade operators terminate them outright (no well-defined broken
//! segment), routing them through the restart arm.

use acp_model::prelude::*;
use acp_simcore::{SimDuration, SimTime};
use acp_state::GlobalStateBoard;
use acp_topology::{OverlayNodeId, SharedPath};
use rand::Rng;

use crate::protocol::{compose_with_mode_in, ProbingConfig, ProbingOutcome, SetupMode};

/// High-bit namespace for repair mini-requests: real workload request
/// ids stay below it, so a mini-request can never collide with (or be
/// mistaken for) an admitted request in leases, ledgers, or digests.
pub const MINI_REQUEST_BIT: u64 = 0x8000_0000_0000_0000;

/// Why a repair attempt failed. The ticket returns to `Degraded` in all
/// cases; the caller decides whether the budget allows another attempt.
#[derive(Debug, Clone, PartialEq)]
pub enum RepairFailure {
    /// Probing found no qualified replacement segment.
    NoComposition,
    /// No virtual path connects a healthy anchor to the new segment.
    Disconnected,
    /// A boundary path could not hold the session's bandwidth.
    BoundaryContended,
    /// The splice-time end-to-end re-validation (Eq. 2/3) rejected the
    /// spliced composition.
    SpliceRejected(AdmissionError),
}

impl RepairFailure {
    /// True when a later retry of the *same* splice can plausibly
    /// succeed without the topology changing. Boundary bandwidth
    /// contention eases within seconds as neighbouring sessions end;
    /// the other failures are structural — no replacement candidates,
    /// no connecting path, or a deterministic QoS rejection — and stay
    /// failed until a heal event minutes away, so the caller should
    /// escalate to a full restart instead of burning retry budget.
    pub fn is_transient(&self) -> bool {
        matches!(self, RepairFailure::BoundaryContended)
    }
}

/// Outcome of one [`RepairPlanner::repair_session`] call.
#[derive(Debug, Clone, PartialEq)]
pub enum RepairVerdict {
    /// The segment was spliced in; the session is healthy again.
    Repaired,
    /// The attempt failed; the session stays degraded.
    Failed(RepairFailure),
    /// The session is unknown or not degraded — nothing to repair.
    NotDegraded,
}

/// One repair attempt's verdict plus the underlying probing ledger
/// (absent when the attempt never reached probing).
#[derive(Debug, Clone)]
pub struct RepairAttempt {
    /// What happened.
    pub verdict: RepairVerdict,
    /// The mini-request's probing outcome, for overhead accounting.
    pub probing: Option<ProbingOutcome>,
}

/// Plans and executes make-before-break segment repairs. Stateful only
/// for the mini-request counter, which must advance in the same order on
/// every shard count — drive repairs in canonical (ascending session id)
/// order from the coordinator.
#[derive(Debug, Clone, Default)]
pub struct RepairPlanner {
    mini_counter: u64,
}

impl RepairPlanner {
    /// A fresh planner with an empty mini-request namespace.
    pub fn new() -> Self {
        RepairPlanner::default()
    }

    /// Mini-requests issued so far.
    pub fn minis_issued(&self) -> u64 {
        self.mini_counter
    }

    /// Attempts to repair degraded session `sid`: derives the broken
    /// segment's sub-request, probes a replacement via `mode`'s setup
    /// path, bridges the boundaries, and splices. Charges one ledger
    /// attempt when repair accounting is on. See the module docs for the
    /// phase breakdown and failure semantics.
    #[allow(clippy::too_many_arguments)] // mirrors compose_with_mode_in, which it wraps
    pub fn repair_session<M: SetupMode, R: Rng + ?Sized>(
        &mut self,
        system: &mut StreamSystem,
        board: &GlobalStateBoard,
        sid: SessionId,
        now: SimTime,
        config: &ProbingConfig,
        mode: &mut M,
        rng: &mut R,
        shard: Option<&mut ShardedRuntime>,
    ) -> RepairAttempt {
        // Snapshot what the borrow checker won't let us read later.
        let Some(session) = system.session(sid) else {
            return RepairAttempt { verdict: RepairVerdict::NotDegraded, probing: None };
        };
        let Some((lo, hi)) = session.broken_span() else {
            return RepairAttempt { verdict: RepairVerdict::NotDegraded, probing: None };
        };
        let request = session.request_spec.clone();
        let composition = session.composition.clone();
        let nv = composition.assignment.len();
        debug_assert!(request.graph.is_path(), "degrade ops terminate non-path sessions");

        if system.repair_accounting() {
            system.repair_ledger_mut().begin_attempt(request.id);
        }

        // Residual QoS budget: what the healthy prefix and suffix leave
        // of the end-to-end requirement, under current load. Heuristic
        // only — the splice re-validates Eq. 3 end-to-end regardless.
        let mut healthy = Qos::ZERO;
        for v in 0..nv {
            if !(lo..=hi).contains(&v) {
                healthy += system.effective_component_qos(composition.assignment[v]);
            }
        }
        for e in 0..composition.links.len() {
            let broken_edge = e + 1 >= lo && e <= hi;
            if !broken_edge {
                healthy += composition.link_qos(e);
            }
        }
        let delay_left =
            (request.qos.max_delay.as_secs_f64() - healthy.delay.as_secs_f64()).max(0.0);
        let loss_left =
            (request.qos.max_loss.log_survival() - healthy.loss.log_survival()).max(0.0);
        let budget = QosRequirement::new(
            SimDuration::from_secs_f64(delay_left),
            LossRate::from_log_survival(loss_left),
        );

        self.mini_counter += 1;
        let mini_request = Request {
            id: RequestId(MINI_REQUEST_BIT | self.mini_counter),
            graph: FunctionGraph::path((lo..=hi).map(|v| request.graph.function(v)).collect()),
            qos: budget,
            tenant: None,
            ..request.clone()
        };

        // Phase 1+2: probe and commit the replacement segment.
        let probing = compose_with_mode_in(
            system,
            board,
            &mini_request,
            now,
            config,
            mode,
            rng,
            shard,
        );
        let Some(mini_sid) = probing.session else {
            self.attempt_failed(system, request.id);
            return RepairAttempt {
                verdict: RepairVerdict::Failed(RepairFailure::NoComposition),
                probing: Some(probing),
            };
        };

        // Boundary bridging: hold the anchor-to-segment paths under the
        // mini-request so the splice promotes them like any other lease.
        let mini_assignment =
            system.session(mini_sid).expect("just committed").composition.assignment.clone();
        let expiry = now + config.transient_timeout;
        let bridge = |system: &mut StreamSystem,
                          anchor: OverlayNodeId,
                          end: OverlayNodeId,
                          marker: usize|
         -> Result<SharedPath, RepairFailure> {
            let Some(path) = system.virtual_path(anchor, end) else {
                return Err(RepairFailure::Disconnected);
            };
            if !path.is_colocated()
                && !system.reserve_path_transient(
                    mini_request.id,
                    marker,
                    &path,
                    request.bandwidth_kbps,
                    expiry,
                )
            {
                return Err(RepairFailure::BoundaryContended);
            }
            Ok(path)
        };
        let mut prefix_path = None;
        if lo > 0 {
            let anchor = composition.assignment[lo - 1].node;
            let end = mini_assignment.first().expect("non-empty segment").node;
            match bridge(system, anchor, end, lo - 1) {
                Ok(p) => prefix_path = Some(p),
                Err(failure) => {
                    self.dismantle(system, mini_sid, mini_request.id, request.id);
                    return RepairAttempt {
                        verdict: RepairVerdict::Failed(failure),
                        probing: Some(probing),
                    };
                }
            }
        }
        let mut suffix_path = None;
        if hi + 1 < nv {
            let end = mini_assignment.last().expect("non-empty segment").node;
            let anchor = composition.assignment[hi + 1].node;
            match bridge(system, end, anchor, hi) {
                Ok(p) => suffix_path = Some(p),
                Err(failure) => {
                    self.dismantle(system, mini_sid, mini_request.id, request.id);
                    return RepairAttempt {
                        verdict: RepairVerdict::Failed(failure),
                        probing: Some(probing),
                    };
                }
            }
        }

        // Phase 3: splice — validate end-to-end, absorb the mini-session,
        // promote the boundary holds, settle the ticket.
        match system.splice_repair(sid, mini_sid, mini_request.id, prefix_path, suffix_path, now) {
            Ok(()) => {
                RepairAttempt { verdict: RepairVerdict::Repaired, probing: Some(probing) }
            }
            Err(e) => {
                self.dismantle(system, mini_sid, mini_request.id, request.id);
                RepairAttempt {
                    verdict: RepairVerdict::Failed(RepairFailure::SpliceRejected(e)),
                    probing: Some(probing),
                }
            }
        }
    }

    /// Unwinds a failed attempt after the mini-session committed: drop
    /// the boundary holds, close the mini-session (returning its books),
    /// and put the ticket back to `Degraded`.
    fn dismantle(
        &self,
        system: &mut StreamSystem,
        mini_sid: SessionId,
        mini_id: RequestId,
        original: RequestId,
    ) {
        system.release_request_transients(mini_id);
        system.close_session(mini_sid);
        self.attempt_failed(system, original);
    }

    fn attempt_failed(&self, system: &mut StreamSystem, request: RequestId) {
        if system.repair_accounting() {
            system.repair_ledger_mut().attempt_failed(request);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{probe_compose, SinglePhase};
    use acp_state::GlobalStateConfig;
    use acp_topology::{InetConfig, Overlay, OverlayConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn build(seed: u64, nodes: usize) -> (StreamSystem, GlobalStateBoard) {
        let mut rng = StdRng::seed_from_u64(seed);
        let ip = InetConfig { nodes: 250, ..InetConfig::default() }.generate(&mut rng);
        let overlay =
            Overlay::build(&ip, &OverlayConfig { stream_nodes: nodes, neighbors: 4 }, &mut rng);
        let sys = StreamSystem::generate(
            overlay,
            FunctionRegistry::standard(),
            &SystemConfig::default(),
            &mut rng,
        );
        let board = GlobalStateBoard::new(&sys, GlobalStateConfig::default());
        (sys, board)
    }

    fn path_request(sys: &StreamSystem, id: u64, len: usize) -> Request {
        let fns: Vec<FunctionId> =
            sys.registry().ids().filter(|&f| sys.candidates(f).len() >= 3).take(len).collect();
        assert_eq!(fns.len(), len, "not enough populated functions");
        Request {
            id: RequestId(id),
            graph: FunctionGraph::path(fns),
            qos: QosRequirement::unconstrained(),
            base_resources: ResourceVector::new(0.5, 2.0),
            bandwidth_kbps: 5.0,
            stream_rate_kbps: 100.0,
            constraints: PlacementConstraints::none(),
            tenant: None,
        }
    }

    #[test]
    fn repairs_crashed_middle_hop_in_place() {
        let (mut sys, board) = build(31, 40);
        sys.set_lease_accounting(true);
        sys.set_repair_accounting(true);
        let req = path_request(&sys, 1, 3);
        let mut rng = StdRng::seed_from_u64(31);
        let cfg = ProbingConfig::default();
        let out = probe_compose(&mut sys, &board, &req, SimTime::ZERO, &cfg, &mut rng);
        let sid = out.session.expect("loose request composes");
        let victim = sys.session(sid).unwrap().composition.assignment[1];

        let t0 = SimTime::from_secs(20);
        let outcome = sys.crash_component_degrading(victim, t0);
        assert_eq!(outcome.degraded, vec![sid]);
        assert!(sys.session(sid).unwrap().is_degraded());

        let mut planner = RepairPlanner::new();
        let t1 = SimTime::from_secs(23);
        let attempt = planner.repair_session(
            &mut sys,
            &board,
            sid,
            t1,
            &cfg,
            &mut SinglePhase,
            &mut rng,
            None,
        );
        assert_eq!(attempt.verdict, RepairVerdict::Repaired, "{attempt:?}");
        let s = sys.session(sid).expect("repaired in place");
        assert!(!s.is_degraded());
        assert_ne!(s.composition.assignment[1], victim);
        assert_eq!(sys.session_count(), 1, "mini-session absorbed");
        let ledger = sys.repair_ledger();
        assert_eq!((ledger.repaired, ledger.validated, ledger.attempts), (1, 1, 1));
        assert!(ledger.reconciles());
        assert!((ledger.mttr_stats().sum - 3.0).abs() < 1e-9, "MTTR fault -> splice");
        let report = SystemAuditor::default().audit_at(&sys, Some(t1));
        assert!(report.is_clean(), "{report}");
        assert!(sys.lease_stats().reconciles(sys.live_lease_count() as u64));
        assert_eq!(planner.minis_issued(), 1);
    }

    #[test]
    fn healthy_session_is_not_repaired() {
        let (mut sys, board) = build(32, 40);
        sys.set_repair_accounting(true);
        let req = path_request(&sys, 2, 3);
        let mut rng = StdRng::seed_from_u64(32);
        let cfg = ProbingConfig::default();
        let out = probe_compose(&mut sys, &board, &req, SimTime::ZERO, &cfg, &mut rng);
        let sid = out.session.expect("composes");
        let mut planner = RepairPlanner::new();
        let attempt = planner.repair_session(
            &mut sys,
            &board,
            sid,
            SimTime::from_secs(1),
            &cfg,
            &mut SinglePhase,
            &mut rng,
            None,
        );
        assert_eq!(attempt.verdict, RepairVerdict::NotDegraded);
        assert_eq!(planner.minis_issued(), 0);
        assert_eq!(sys.repair_ledger().attempts, 0);
    }

    #[test]
    fn failed_attempt_returns_ticket_to_degraded_and_leaves_no_residue() {
        let (mut sys, board) = build(33, 40);
        sys.set_lease_accounting(true);
        sys.set_repair_accounting(true);
        let req = path_request(&sys, 3, 3);
        let mut rng = StdRng::seed_from_u64(33);
        let cfg = ProbingConfig::default();
        let out = probe_compose(&mut sys, &board, &req, SimTime::ZERO, &cfg, &mut rng);
        let sid = out.session.expect("composes");
        let mid_function = req.graph.function(1);
        let t0 = SimTime::from_secs(10);
        // Crash the session's middle hop, then every other candidate of
        // that function — probing has nothing left to splice.
        let victim = sys.session(sid).unwrap().composition.assignment[1];
        sys.crash_component_degrading(victim, t0);
        for c in sys.candidates(mid_function).to_vec() {
            sys.crash_component_degrading(c, t0);
        }
        assert!(sys.candidates(mid_function).is_empty());

        let mut planner = RepairPlanner::new();
        let attempt = planner.repair_session(
            &mut sys,
            &board,
            sid,
            SimTime::from_secs(12),
            &cfg,
            &mut SinglePhase,
            &mut rng,
            None,
        );
        assert_eq!(
            attempt.verdict,
            RepairVerdict::Failed(RepairFailure::NoComposition),
            "{attempt:?}"
        );
        let s = sys.session(sid).expect("session still degraded, not torn down");
        assert!(s.is_degraded());
        let ticket = sys.repair_ledger().ticket(req.id).expect("ticket open");
        assert_eq!(ticket.phase, RepairPhase::Degraded);
        assert_eq!(ticket.attempts, 1);
        assert_eq!(sys.session_count(), 1, "no mini-session residue");
        assert!(sys.lease_stats().reconciles(sys.live_lease_count() as u64));
        // The budget-exhausted path abandons cleanly.
        assert!(sys.abandon_repair(sid));
        assert_eq!(sys.repair_ledger().abandoned, 1);
        assert!(sys.repair_ledger().reconciles());
        let report = SystemAuditor::default().audit(&sys);
        assert!(report.is_clean(), "{report}");
    }
}
