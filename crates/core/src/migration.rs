//! Dynamic component placement (migration) integrated with composition.
//!
//! The paper's final future-work item (§6, item 3) is "integrating
//! dynamic component placement (or migration) with the component
//! composition system". Footnote 1 already anticipates it: "Components
//! can be dynamically migrated among nodes. The component composition
//! operates based on the current component placement."
//!
//! [`Rebalancer`] implements a periodic placement policy: it finds the
//! hottest and coldest nodes by resource utilisation and migrates *idle*
//! components (serving no live session) off the hot nodes, so future
//! compositions find candidates with head-room. Migrations respect the
//! distinct-functions-per-node invariant and are advertised to the rest
//! of the system through the normal coarse-grain state updates — until a
//! node's next update, a freshly migrated component is invisible to ACP's
//! candidate selection (exactly the propagation delay a real deployment
//! would see).

use acp_model::prelude::*;
use acp_model::system::MigrationError;
use acp_topology::OverlayNodeId;

/// Rebalancing policy knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RebalanceConfig {
    /// Minimum utilisation gap (hot − cold) before a migration is worth
    /// its disruption.
    pub min_utilization_gap: f64,
    /// Upper bound on migrations per round.
    pub max_migrations_per_round: usize,
}

impl Default for RebalanceConfig {
    fn default() -> Self {
        RebalanceConfig { min_utilization_gap: 0.25, max_migrations_per_round: 4 }
    }
}

/// One executed migration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MigrationRecord {
    /// The component's identity before the move.
    pub from: ComponentId,
    /// Its identity after the move.
    pub to: ComponentId,
}

/// Periodic load-driven component migration.
#[derive(Debug, Clone, Default)]
pub struct Rebalancer {
    config: RebalanceConfig,
    total_migrations: u64,
    rejected: u64,
}

impl Rebalancer {
    /// Creates a rebalancer with the given policy.
    pub fn new(config: RebalanceConfig) -> Self {
        Rebalancer { config, total_migrations: 0, rejected: 0 }
    }

    /// Total migrations executed over the rebalancer's lifetime.
    pub fn total_migrations(&self) -> u64 {
        self.total_migrations
    }

    /// Migration attempts refused (component in use, duplicate function…).
    pub fn rejected(&self) -> u64 {
        self.rejected
    }

    /// CPU-dominated utilisation of a node (committed / capacity).
    fn utilization(system: &StreamSystem, v: OverlayNodeId) -> f64 {
        let node = system.node(v);
        node.capacity().max_utilization_of(&node.committed()).min(1.0)
    }

    /// Runs one rebalancing round: repeatedly migrates an idle component
    /// from the currently hottest node to the coldest node that can host
    /// its function, while the utilisation gap exceeds the configured
    /// minimum. Returns the executed migrations.
    pub fn rebalance_round(&mut self, system: &mut StreamSystem) -> Vec<MigrationRecord> {
        let mut executed = Vec::new();
        for _ in 0..self.config.max_migrations_per_round {
            // Rank nodes by utilisation.
            let mut ranked: Vec<(f64, OverlayNodeId)> = system
                .overlay()
                .nodes()
                .map(|v| (Self::utilization(system, v), v))
                .collect();
            ranked.sort_by(|a, b| b.0.total_cmp(&a.0));
            let (hot_util, hot) = ranked[0];
            let (cold_util, _) = *ranked.last().expect("non-empty overlay");
            if hot_util - cold_util < self.config.min_utilization_gap {
                break;
            }
            // Pick an idle component on the hot node and the coldest
            // feasible target for it.
            let candidates: Vec<ComponentId> = system.node(hot).components().map(|c| c.id).collect();
            let mut moved = false;
            'components: for id in candidates {
                if system.component_in_use(id) {
                    continue;
                }
                let function = system.component(id).function;
                for &(util, target) in ranked.iter().rev() {
                    if target == hot || util >= hot_util {
                        break;
                    }
                    if system.node(target).hosts_function(function) {
                        continue;
                    }
                    match system.migrate_component(id, target) {
                        Ok(new_id) => {
                            executed.push(MigrationRecord { from: id, to: new_id });
                            self.total_migrations += 1;
                            moved = true;
                            break 'components;
                        }
                        Err(MigrationError::InUse | MigrationError::DuplicateFunction) => {
                            self.rejected += 1;
                            continue;
                        }
                        Err(_) => {
                            self.rejected += 1;
                            continue;
                        }
                    }
                }
            }
            if !moved {
                break; // nothing movable on the hottest node
            }
        }
        executed
    }
}

/// Preemption policy knobs (multi-tenant pressure relief).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PreemptionConfig {
    /// Upper bound on sessions preempted per round.
    pub max_preemptions_per_round: usize,
    /// Skip nodes below this utilisation — preemption is pressure
    /// relief, not garbage collection.
    pub min_node_utilization: f64,
}

impl Default for PreemptionConfig {
    fn default() -> Self {
        PreemptionConfig { max_preemptions_per_round: 4, min_node_utilization: 0.5 }
    }
}

/// Pressure-driven preemption of `BestEffort` sessions, sharing the
/// [`Rebalancer`]'s utilisation ranking: when the congestion gate alone
/// can't relieve pressure (the caller decides when to run a round —
/// typically when the φ-congestion estimate crosses a threshold),
/// best-effort sessions on the hottest nodes are reclaimed, hottest node
/// first, ascending session id within a node. By construction only
/// best-effort sessions are ever touched; the tenant auditor
/// independently verifies that no higher tier accrues preemptions.
#[derive(Debug, Clone, Default)]
pub struct Preemptor {
    config: PreemptionConfig,
    total_preempted: u64,
}

impl Preemptor {
    /// Creates a preemptor with the given policy.
    pub fn new(config: PreemptionConfig) -> Self {
        Preemptor { config, total_preempted: 0 }
    }

    /// Sessions preempted over the preemptor's lifetime.
    pub fn total_preempted(&self) -> u64 {
        self.total_preempted
    }

    /// Runs one preemption round, returning the reclaimed requests (for
    /// per-tenant bookkeeping at the caller).
    pub fn preempt_round(&mut self, system: &mut StreamSystem) -> Vec<Request> {
        let mut ranked: Vec<(f64, OverlayNodeId)> = system
            .overlay()
            .nodes()
            .map(|v| {
                let node = system.node(v);
                (node.capacity().max_utilization_of(&node.committed()).min(1.0), v)
            })
            .collect();
        ranked.sort_by(|a, b| b.0.total_cmp(&a.0));
        let mut reclaimed = Vec::new();
        'nodes: for &(util, v) in &ranked {
            if util < self.config.min_node_utilization {
                break;
            }
            for sid in system.best_effort_sessions_on(v) {
                if reclaimed.len() >= self.config.max_preemptions_per_round {
                    break 'nodes;
                }
                if let Some(spec) = system.preempt_session(sid) {
                    reclaimed.push(spec);
                    self.total_preempted += 1;
                }
            }
        }
        reclaimed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acp_state::{GlobalStateBoard, GlobalStateConfig};
    use acp_topology::{InetConfig, Overlay, OverlayConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn build(seed: u64) -> StreamSystem {
        let mut rng = StdRng::seed_from_u64(seed);
        let ip = InetConfig { nodes: 200, ..InetConfig::default() }.generate(&mut rng);
        let overlay = Overlay::build(&ip, &OverlayConfig { stream_nodes: 20, neighbors: 4 }, &mut rng);
        StreamSystem::generate(overlay, FunctionRegistry::with_size(20), &SystemConfig::default(), &mut rng)
    }

    /// Heavily load one node by committing sessions onto its components.
    fn heat_node(system: &mut StreamSystem, node: OverlayNodeId) -> usize {
        let comps: Vec<ComponentId> = system.node(node).components().map(|c| c.id).collect();
        let mut committed = 0;
        for (i, &c) in comps.iter().enumerate().take(1) {
            let f = system.component(c).function;
            let cap = system.node(node).capacity();
            let factor = system.registry().profile(f).demand_factor;
            let req = Request {
                id: RequestId(5_000 + i as u64),
                graph: FunctionGraph::path(vec![f]),
                qos: QosRequirement::unconstrained(),
                base_resources: ResourceVector::new(
                    0.6 * cap.cpu / factor,
                    0.6 * cap.memory_mb / factor,
                ),
                bandwidth_kbps: 0.0,
                stream_rate_kbps: 1.0,
                constraints: PlacementConstraints::none(),
                tenant: None,
            };
            let comp = Composition { assignment: vec![c], links: vec![] };
            if system.commit_session(&req, comp).is_ok() {
                committed += 1;
            }
        }
        committed
    }

    #[test]
    fn migration_moves_component_and_updates_discovery() {
        let mut system = build(1);
        let source = OverlayNodeId(0);
        let id = system.node(source).components().next().expect("hosted component").id;
        let function = system.component(id).function;
        // find a target without this function
        let nodes: Vec<OverlayNodeId> = system.overlay().nodes().collect();
        let target = nodes
            .into_iter()
            .find(|&v| v != source && !system.node(v).hosts_function(function))
            .expect("some node lacks the function");
        let before = system.candidates(function).len();
        let new_id = system.migrate_component(id, target).expect("idle component migrates");
        assert_eq!(new_id.node, target);
        assert_eq!(system.candidates(function).len(), before, "candidate count preserved");
        assert!(system.candidates(function).contains(&new_id));
        assert!(!system.candidates(function).contains(&id));
        assert_eq!(system.component(new_id).function, function);
        assert!(system.node(source).component(id.slot).is_none(), "tombstoned at source");
    }

    #[test]
    fn in_use_components_do_not_migrate() {
        let mut system = build(2);
        let node = OverlayNodeId(0);
        assert!(heat_node(&mut system, node) > 0);
        let used = system
            .sessions()
            .next()
            .map(|s| s.composition.assignment[0])
            .expect("session exists");
        let function = system.component(used).function;
        let nodes: Vec<OverlayNodeId> = system.overlay().nodes().collect();
        let target = nodes
            .into_iter()
            .find(|&v| v != used.node && !system.node(v).hosts_function(function))
            .expect("target");
        assert_eq!(system.migrate_component(used, target), Err(MigrationError::InUse));
    }

    #[test]
    fn duplicate_function_target_is_refused() {
        let mut system = build(3);
        let id = system.node(OverlayNodeId(0)).components().next().unwrap().id;
        let function = system.component(id).function;
        let nodes: Vec<OverlayNodeId> = system.overlay().nodes().collect();
        if let Some(target) =
            nodes.into_iter().find(|&v| v != id.node && system.node(v).hosts_function(function))
        {
            assert_eq!(system.migrate_component(id, target), Err(MigrationError::DuplicateFunction));
        }
    }

    #[test]
    fn same_node_migration_is_refused() {
        let mut system = build(4);
        let id = system.node(OverlayNodeId(0)).components().next().unwrap().id;
        assert_eq!(system.migrate_component(id, id.node), Err(MigrationError::SameNode));
    }

    #[test]
    fn rebalance_reduces_hot_cold_gap() {
        let mut system = build(5);
        // heat several nodes
        for i in 0..3 {
            heat_node(&mut system, OverlayNodeId(i));
        }
        let gap = |system: &StreamSystem| {
            let utils: Vec<f64> = system
                .overlay()
                .nodes()
                .map(|v| Rebalancer::utilization(system, v))
                .collect();
            utils.iter().cloned().fold(0.0, f64::max) - utils.iter().cloned().fold(1.0, f64::min)
        };
        let before = gap(&system);
        let mut rebalancer = Rebalancer::new(RebalanceConfig::default());
        let moves = rebalancer.rebalance_round(&mut system);
        // The hot nodes' load is session-bound (cannot move), but their
        // idle components relocate to cold nodes, widening future choice;
        // the gap must not grow and some migration should happen.
        assert!(gap(&system) <= before + 1e-9);
        assert_eq!(moves.len() as u64, rebalancer.total_migrations());
        for m in &moves {
            assert_ne!(m.from.node, m.to.node);
            // migrated components exist at their new identity
            let _ = system.component(m.to);
        }
    }

    #[test]
    fn migrated_candidates_surface_after_board_refresh() {
        let mut system = build(6);
        let mut board = GlobalStateBoard::new(&system, GlobalStateConfig::default());
        let id = system.node(OverlayNodeId(0)).components().next().unwrap().id;
        let function = system.component(id).function;
        let nodes: Vec<OverlayNodeId> = system.overlay().nodes().collect();
        let target = nodes
            .into_iter()
            .find(|&v| v != id.node && !system.node(v).hosts_function(function))
            .expect("target");
        let new_id = system.migrate_component(id, target).unwrap();
        // Unknown to the coarse board until the next update…
        assert!(board.component_qos(new_id).is_none());
        board.refresh_nodes(&system);
        // …and visible afterwards (deployment change forces a publish).
        assert!(board.component_qos(new_id).is_some());
        assert!(board.component_qos(id).is_none(), "stale identity dropped");
    }

    #[test]
    fn balanced_system_is_left_alone() {
        let mut system = build(7);
        let mut rebalancer = Rebalancer::new(RebalanceConfig::default());
        let moves = rebalancer.rebalance_round(&mut system);
        assert!(moves.is_empty(), "no load, no migrations");
        assert_eq!(rebalancer.total_migrations(), 0);
    }
}
