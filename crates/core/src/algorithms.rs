//! The [`Composer`] abstraction and the six algorithms of the paper's
//! evaluation (§4.1):
//!
//! | name      | per-hop selection       | final selection | global state |
//! |-----------|-------------------------|-----------------|--------------|
//! | `optimal` | exhaustive              | min φ(λ)        | precise      |
//! | `acp`     | risk/congestion ranking | min φ(λ)        | coarse       |
//! | `sp`      | risk/congestion ranking | random          | coarse       |
//! | `rp`      | random                  | min φ(λ)        | none         |
//! | `random`  | single random pick      | —               | none         |
//! | `static`  | single fixed pick       | —               | none         |

use acp_model::prelude::*;
use acp_simcore::SimTime;
use acp_state::GlobalStateBoard;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::naive::{blind_compose, BlindStrategy};
use crate::optimal::{optimal_compose, OptimalConfig};
use crate::overhead::OverheadStats;
use crate::protocol::{
    compose_with_mode, compose_with_mode_in, FinalSelection, ProbingConfig, SetupConfig, SetupMode,
    SetupState, SetupStats, SinglePhase,
};
use crate::selection::HopSelection;

/// Result of one composition attempt.
#[derive(Debug, Clone)]
pub struct ComposeOutcome {
    /// The established session, if composition succeeded.
    pub session: Option<SessionId>,
    /// Message ledger for this request.
    pub stats: OverheadStats,
    /// Probing rounds run (1 unless fault-induced retries happened;
    /// always 1 for the non-probing algorithms).
    pub attempts: u32,
    /// Two-phase setup ledger (all-zero unless two-phase setup is
    /// enabled and faults fired).
    pub setup: SetupStats,
}

/// A composition algorithm: given the system, the coarse global state and
/// a request, find and commit a component graph.
pub trait Composer {
    /// Short algorithm name used in reports ("acp", "optimal", …).
    fn name(&self) -> &'static str;

    /// Attempts to compose and commit `request` at simulated time `now`.
    fn compose(
        &mut self,
        system: &mut StreamSystem,
        board: &GlobalStateBoard,
        request: &Request,
        now: SimTime,
    ) -> ComposeOutcome;

    /// Like [`Self::compose`], under a [`ShardedRuntime`]: probing
    /// algorithms fan their RNG-free stages out across shard workers
    /// (byte-identical results at any shard count); algorithms without a
    /// parallelizable stage fall back to [`Self::compose`].
    fn compose_sharded(
        &mut self,
        system: &mut StreamSystem,
        board: &GlobalStateBoard,
        request: &Request,
        now: SimTime,
        rt: &mut ShardedRuntime,
    ) -> ComposeOutcome {
        let _ = rt;
        self.compose(system, board, request, now)
    }

    /// Updates the probing ratio, for algorithms that have one. Default:
    /// no-op.
    fn set_probing_ratio(&mut self, _alpha: f64) {}

    /// The current probing ratio, if the algorithm has one.
    fn probing_ratio(&self) -> Option<f64> {
        None
    }
}

/// The ACP algorithm: coarse-state-guided selective probing with
/// min-φ(λ) final selection.
///
/// The setup mode is a type parameter: the default [`SinglePhase`]
/// instantiation compiles the entire two-phase machinery (retry loop,
/// fault sampling, backoff draws, lease accounting hooks) out of the hot
/// path, while `AcpComposer<SetupState>` carries the lossy-transport
/// protocol. Dispatch happens once, at construction.
#[derive(Debug)]
pub struct AcpComposer<M: SetupMode = SinglePhase> {
    config: ProbingConfig,
    rng: StdRng,
    mode: M,
}

impl AcpComposer {
    /// Creates a single-phase ACP composer with the given probing
    /// configuration.
    pub fn new(config: ProbingConfig, seed: u64) -> Self {
        AcpComposer::with_mode(config, seed, SinglePhase)
    }
}

impl<M: SetupMode> AcpComposer<M> {
    /// Creates an ACP composer running under an explicit setup mode.
    pub fn with_mode(config: ProbingConfig, seed: u64, mode: M) -> Self {
        let config = ProbingConfig {
            hop_selection: HopSelection::Ranked,
            final_selection: FinalSelection::MinCongestion,
            ..config
        };
        AcpComposer { config, rng: StdRng::seed_from_u64(seed), mode }
    }

    /// The probing configuration in effect.
    pub fn config(&self) -> &ProbingConfig {
        &self.config
    }
}

impl<M: SetupMode> Composer for AcpComposer<M> {
    fn name(&self) -> &'static str {
        "acp"
    }

    fn compose(
        &mut self,
        system: &mut StreamSystem,
        board: &GlobalStateBoard,
        request: &Request,
        now: SimTime,
    ) -> ComposeOutcome {
        let out = compose_with_mode(
            system,
            board,
            request,
            now,
            &self.config,
            &mut self.mode,
            &mut self.rng,
        );
        ComposeOutcome { session: out.session, stats: out.stats, attempts: out.attempts, setup: out.setup }
    }

    fn compose_sharded(
        &mut self,
        system: &mut StreamSystem,
        board: &GlobalStateBoard,
        request: &Request,
        now: SimTime,
        rt: &mut ShardedRuntime,
    ) -> ComposeOutcome {
        let out = compose_with_mode_in(
            system,
            board,
            request,
            now,
            &self.config,
            &mut self.mode,
            &mut self.rng,
            Some(rt),
        );
        ComposeOutcome { session: out.session, stats: out.stats, attempts: out.attempts, setup: out.setup }
    }

    fn set_probing_ratio(&mut self, alpha: f64) {
        self.config.probing_ratio = alpha.clamp(0.0, 1.0);
    }

    fn probing_ratio(&self) -> Option<f64> {
        Some(self.config.probing_ratio)
    }
}

/// The SP baseline: ACP's per-hop selection, random final selection.
#[derive(Debug)]
pub struct SelectiveProbingComposer<M: SetupMode = SinglePhase> {
    config: ProbingConfig,
    rng: StdRng,
    mode: M,
}

impl SelectiveProbingComposer {
    /// Creates a single-phase SP composer.
    pub fn new(config: ProbingConfig, seed: u64) -> Self {
        SelectiveProbingComposer::with_mode(config, seed, SinglePhase)
    }
}

impl<M: SetupMode> SelectiveProbingComposer<M> {
    /// Creates an SP composer running under an explicit setup mode.
    pub fn with_mode(config: ProbingConfig, seed: u64, mode: M) -> Self {
        let config = ProbingConfig {
            hop_selection: HopSelection::Ranked,
            final_selection: FinalSelection::Random,
            ..config
        };
        SelectiveProbingComposer { config, rng: StdRng::seed_from_u64(seed), mode }
    }
}

impl<M: SetupMode> Composer for SelectiveProbingComposer<M> {
    fn name(&self) -> &'static str {
        "sp"
    }

    fn compose(
        &mut self,
        system: &mut StreamSystem,
        board: &GlobalStateBoard,
        request: &Request,
        now: SimTime,
    ) -> ComposeOutcome {
        let out = compose_with_mode(
            system,
            board,
            request,
            now,
            &self.config,
            &mut self.mode,
            &mut self.rng,
        );
        ComposeOutcome { session: out.session, stats: out.stats, attempts: out.attempts, setup: out.setup }
    }

    fn compose_sharded(
        &mut self,
        system: &mut StreamSystem,
        board: &GlobalStateBoard,
        request: &Request,
        now: SimTime,
        rt: &mut ShardedRuntime,
    ) -> ComposeOutcome {
        let out = compose_with_mode_in(
            system,
            board,
            request,
            now,
            &self.config,
            &mut self.mode,
            &mut self.rng,
            Some(rt),
        );
        ComposeOutcome { session: out.session, stats: out.stats, attempts: out.attempts, setup: out.setup }
    }

    fn set_probing_ratio(&mut self, alpha: f64) {
        self.config.probing_ratio = alpha.clamp(0.0, 1.0);
    }

    fn probing_ratio(&self) -> Option<f64> {
        Some(self.config.probing_ratio)
    }
}

/// The RP baseline: random per-hop selection (fully distributed, no
/// global state), ACP's min-φ(λ) final selection.
#[derive(Debug)]
pub struct RandomProbingComposer<M: SetupMode = SinglePhase> {
    config: ProbingConfig,
    rng: StdRng,
    mode: M,
}

impl RandomProbingComposer {
    /// Creates a single-phase RP composer.
    pub fn new(config: ProbingConfig, seed: u64) -> Self {
        RandomProbingComposer::with_mode(config, seed, SinglePhase)
    }
}

impl<M: SetupMode> RandomProbingComposer<M> {
    /// Creates an RP composer running under an explicit setup mode.
    pub fn with_mode(config: ProbingConfig, seed: u64, mode: M) -> Self {
        let config = ProbingConfig {
            hop_selection: HopSelection::Random,
            final_selection: FinalSelection::MinCongestion,
            ..config
        };
        RandomProbingComposer { config, rng: StdRng::seed_from_u64(seed), mode }
    }
}

impl<M: SetupMode> Composer for RandomProbingComposer<M> {
    fn name(&self) -> &'static str {
        "rp"
    }

    fn compose(
        &mut self,
        system: &mut StreamSystem,
        board: &GlobalStateBoard,
        request: &Request,
        now: SimTime,
    ) -> ComposeOutcome {
        let out = compose_with_mode(
            system,
            board,
            request,
            now,
            &self.config,
            &mut self.mode,
            &mut self.rng,
        );
        ComposeOutcome { session: out.session, stats: out.stats, attempts: out.attempts, setup: out.setup }
    }

    fn compose_sharded(
        &mut self,
        system: &mut StreamSystem,
        board: &GlobalStateBoard,
        request: &Request,
        now: SimTime,
        rt: &mut ShardedRuntime,
    ) -> ComposeOutcome {
        let out = compose_with_mode_in(
            system,
            board,
            request,
            now,
            &self.config,
            &mut self.mode,
            &mut self.rng,
            Some(rt),
        );
        ComposeOutcome { session: out.session, stats: out.stats, attempts: out.attempts, setup: out.setup }
    }

    fn set_probing_ratio(&mut self, alpha: f64) {
        self.config.probing_ratio = alpha.clamp(0.0, 1.0);
    }

    fn probing_ratio(&self) -> Option<f64> {
        Some(self.config.probing_ratio)
    }
}

/// Bounded composition probing (BCP) — the simpler ACP variant the
/// paper's PlanetLab prototype implements (footnote 10): ranked per-hop
/// selection and min-φ final selection like ACP, but with a **fixed**
/// per-function probe budget instead of a tunable probing ratio (and
/// hence no ratio tuner).
#[derive(Debug)]
pub struct BoundedProbingComposer<M: SetupMode = SinglePhase> {
    config: ProbingConfig,
    rng: StdRng,
    mode: M,
}

impl BoundedProbingComposer {
    /// Creates a single-phase BCP composer probing at most `budget`
    /// candidates per function.
    ///
    /// # Panics
    ///
    /// Panics when `budget` is zero.
    pub fn new(budget: usize, config: ProbingConfig, seed: u64) -> Self {
        BoundedProbingComposer::with_mode(budget, config, seed, SinglePhase)
    }
}

impl<M: SetupMode> BoundedProbingComposer<M> {
    /// Creates a BCP composer running under an explicit setup mode.
    ///
    /// # Panics
    ///
    /// Panics when `budget` is zero.
    pub fn with_mode(budget: usize, config: ProbingConfig, seed: u64, mode: M) -> Self {
        assert!(budget > 0, "probe budget must be positive");
        let config = ProbingConfig {
            hop_selection: HopSelection::Ranked,
            final_selection: FinalSelection::MinCongestion,
            probing_ratio: 1.0, // ranking considers every candidate…
            quota_override: Some(budget), // …the budget caps the spawns
            ..config
        };
        BoundedProbingComposer { config, rng: StdRng::seed_from_u64(seed), mode }
    }

    /// The fixed per-function probe budget.
    pub fn budget(&self) -> usize {
        self.config.quota_override.expect("set in constructor")
    }
}

impl<M: SetupMode> Composer for BoundedProbingComposer<M> {
    fn name(&self) -> &'static str {
        "bcp"
    }

    fn compose(
        &mut self,
        system: &mut StreamSystem,
        board: &GlobalStateBoard,
        request: &Request,
        now: SimTime,
    ) -> ComposeOutcome {
        let out = compose_with_mode(
            system,
            board,
            request,
            now,
            &self.config,
            &mut self.mode,
            &mut self.rng,
        );
        ComposeOutcome { session: out.session, stats: out.stats, attempts: out.attempts, setup: out.setup }
    }

    fn compose_sharded(
        &mut self,
        system: &mut StreamSystem,
        board: &GlobalStateBoard,
        request: &Request,
        now: SimTime,
        rt: &mut ShardedRuntime,
    ) -> ComposeOutcome {
        let out = compose_with_mode_in(
            system,
            board,
            request,
            now,
            &self.config,
            &mut self.mode,
            &mut self.rng,
            Some(rt),
        );
        ComposeOutcome { session: out.session, stats: out.stats, attempts: out.attempts, setup: out.setup }
    }
}

/// The exhaustive-search baseline.
#[derive(Debug, Default)]
pub struct OptimalComposer {
    config: OptimalConfig,
}

impl OptimalComposer {
    /// Creates an optimal composer.
    pub fn new(config: OptimalConfig) -> Self {
        OptimalComposer { config }
    }
}

impl Composer for OptimalComposer {
    fn name(&self) -> &'static str {
        "optimal"
    }

    fn compose(
        &mut self,
        system: &mut StreamSystem,
        _board: &GlobalStateBoard,
        request: &Request,
        now: SimTime,
    ) -> ComposeOutcome {
        let out = optimal_compose(system, request, now, &self.config);
        ComposeOutcome {
            session: out.session,
            stats: out.stats,
            attempts: 1,
            setup: SetupStats::default(),
        }
    }
}

/// The random baseline.
#[derive(Debug)]
pub struct RandomComposer {
    rng: StdRng,
}

impl RandomComposer {
    /// Creates a random composer.
    pub fn new(seed: u64) -> Self {
        RandomComposer { rng: StdRng::seed_from_u64(seed) }
    }
}

impl Composer for RandomComposer {
    fn name(&self) -> &'static str {
        "random"
    }

    fn compose(
        &mut self,
        system: &mut StreamSystem,
        _board: &GlobalStateBoard,
        request: &Request,
        now: SimTime,
    ) -> ComposeOutcome {
        let out = blind_compose(system, request, now, BlindStrategy::Random, &mut self.rng);
        ComposeOutcome {
            session: out.session,
            stats: out.stats,
            attempts: 1,
            setup: SetupStats::default(),
        }
    }
}

/// The static baseline.
#[derive(Debug, Default)]
pub struct StaticComposer;

impl StaticComposer {
    /// Creates a static composer.
    pub fn new() -> Self {
        StaticComposer
    }
}

impl Composer for StaticComposer {
    fn name(&self) -> &'static str {
        "static"
    }

    fn compose(
        &mut self,
        system: &mut StreamSystem,
        _board: &GlobalStateBoard,
        request: &Request,
        now: SimTime,
    ) -> ComposeOutcome {
        // rng unused by the static strategy
        let mut rng = StdRng::seed_from_u64(0);
        let out = blind_compose(system, request, now, BlindStrategy::Static, &mut rng);
        ComposeOutcome {
            session: out.session,
            stats: out.stats,
            attempts: 1,
            setup: SetupStats::default(),
        }
    }
}

/// The algorithms of the paper's evaluation, for driving sweeps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AlgorithmKind {
    /// Exhaustive search.
    Optimal,
    /// Adaptive composition probing.
    Acp,
    /// Selective probing (random final pick).
    Sp,
    /// Random probing (random per-hop, optimal final pick).
    Rp,
    /// Blind random.
    Random,
    /// Blind static.
    Static,
}

impl AlgorithmKind {
    /// All algorithms, in the paper's presentation order.
    pub const ALL: [AlgorithmKind; 6] = [
        AlgorithmKind::Optimal,
        AlgorithmKind::Acp,
        AlgorithmKind::Sp,
        AlgorithmKind::Rp,
        AlgorithmKind::Random,
        AlgorithmKind::Static,
    ];

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            AlgorithmKind::Optimal => "optimal",
            AlgorithmKind::Acp => "acp",
            AlgorithmKind::Sp => "sp",
            AlgorithmKind::Rp => "rp",
            AlgorithmKind::Random => "random",
            AlgorithmKind::Static => "static",
        }
    }

    /// Instantiates the composer with a probing configuration (used by
    /// the probing algorithms, ignored by the others) and an RNG seed.
    pub fn build(self, probing: ProbingConfig, seed: u64) -> Box<dyn Composer> {
        self.build_with(probing, OptimalConfig::default(), seed)
    }

    /// Like [`Self::build`], with an explicit exhaustive-search
    /// configuration for [`AlgorithmKind::Optimal`].
    pub fn build_with(self, probing: ProbingConfig, optimal: OptimalConfig, seed: u64) -> Box<dyn Composer> {
        self.build_composer(probing, optimal, seed, None)
    }

    /// Like [`Self::build_with`], selecting the setup mode at
    /// construction time: `None` instantiates the probing algorithms
    /// over [`SinglePhase`] (the two-phase machinery compiles away),
    /// `Some((setup_seed, config))` over the fault-injecting
    /// [`SetupState`]. The non-probing algorithms commit directly and
    /// ignore the setup configuration either way.
    pub fn build_composer(
        self,
        probing: ProbingConfig,
        optimal: OptimalConfig,
        seed: u64,
        setup: Option<(u64, SetupConfig)>,
    ) -> Box<dyn Composer> {
        match self {
            AlgorithmKind::Optimal => Box::new(OptimalComposer::new(optimal)),
            AlgorithmKind::Random => Box::new(RandomComposer::new(seed)),
            AlgorithmKind::Static => Box::new(StaticComposer::new()),
            AlgorithmKind::Acp => match setup {
                None => Box::new(AcpComposer::new(probing, seed)),
                Some((s, cfg)) => {
                    Box::new(AcpComposer::with_mode(probing, seed, SetupState::new(s, cfg)))
                }
            },
            AlgorithmKind::Sp => match setup {
                None => Box::new(SelectiveProbingComposer::new(probing, seed)),
                Some((s, cfg)) => Box::new(SelectiveProbingComposer::with_mode(
                    probing,
                    seed,
                    SetupState::new(s, cfg),
                )),
            },
            AlgorithmKind::Rp => match setup {
                None => Box::new(RandomProbingComposer::new(probing, seed)),
                Some((s, cfg)) => {
                    Box::new(RandomProbingComposer::with_mode(probing, seed, SetupState::new(s, cfg)))
                }
            },
        }
    }
}

impl std::fmt::Display for AlgorithmKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acp_state::GlobalStateConfig;
    use acp_topology::{InetConfig, Overlay, OverlayConfig};

    fn build(seed: u64) -> (StreamSystem, GlobalStateBoard) {
        let mut rng = StdRng::seed_from_u64(seed);
        let ip = InetConfig { nodes: 200, ..InetConfig::default() }.generate(&mut rng);
        let overlay = Overlay::build(&ip, &OverlayConfig { stream_nodes: 25, neighbors: 4 }, &mut rng);
        let sys = StreamSystem::generate(
            overlay,
            FunctionRegistry::standard(),
            &SystemConfig { components_per_node: (2, 3), ..SystemConfig::default() },
            &mut rng,
        );
        let board = GlobalStateBoard::new(&sys, GlobalStateConfig::default());
        (sys, board)
    }

    fn request(sys: &StreamSystem, id: u64) -> Request {
        let fns: Vec<FunctionId> =
            sys.registry().ids().filter(|&f| !sys.candidates(f).is_empty()).take(3).collect();
        Request {
            id: RequestId(id),
            graph: FunctionGraph::path(fns),
            qos: QosRequirement::unconstrained(),
            base_resources: ResourceVector::new(0.3, 1.5),
            bandwidth_kbps: 3.0,
            stream_rate_kbps: 64.0,
            constraints: PlacementConstraints::none(),
            tenant: None,
        }
    }

    #[test]
    fn every_algorithm_composes_a_loose_request() {
        for kind in AlgorithmKind::ALL {
            let (mut sys, board) = build(10);
            let req = request(&sys, 1);
            let mut composer = kind.build(ProbingConfig::default(), 42);
            let out = composer.compose(&mut sys, &board, &req, SimTime::ZERO);
            assert!(out.session.is_some(), "{kind} failed a loose request");
            assert_eq!(composer.name(), kind.label());
        }
    }

    #[test]
    fn probing_ratio_plumbs_through() {
        let mut acp = AcpComposer::new(ProbingConfig::default(), 1);
        assert_eq!(acp.probing_ratio(), Some(0.3));
        acp.set_probing_ratio(0.7);
        assert_eq!(acp.probing_ratio(), Some(0.7));
        acp.set_probing_ratio(5.0);
        assert_eq!(acp.probing_ratio(), Some(1.0), "clamped");
        let opt = OptimalComposer::default();
        assert_eq!(opt.probing_ratio(), None);
    }

    /// Builds a denser system where functions have ≥5 candidates, so the
    /// probing ratio actually bites.
    fn build_dense(seed: u64) -> (StreamSystem, GlobalStateBoard) {
        let mut rng = StdRng::seed_from_u64(seed);
        let ip = InetConfig { nodes: 300, ..InetConfig::default() }.generate(&mut rng);
        let overlay = Overlay::build(&ip, &OverlayConfig { stream_nodes: 60, neighbors: 4 }, &mut rng);
        let sys = StreamSystem::generate(
            overlay,
            FunctionRegistry::standard(),
            &SystemConfig::default(),
            &mut rng,
        );
        let board = GlobalStateBoard::new(&sys, GlobalStateConfig::default());
        (sys, board)
    }

    #[test]
    fn overhead_ordering_matches_paper() {
        // optimal ≫ acp ≈ rp ≫ random for probe messages on one request.
        let (sys0, board) = build_dense(11);
        let fns: Vec<FunctionId> =
            sys0.registry().ids().filter(|&f| sys0.candidates(f).len() >= 5).take(3).collect();
        assert_eq!(fns.len(), 3, "dense system should have populous functions");
        let req = Request {
            id: RequestId(2),
            graph: FunctionGraph::path(fns),
            qos: QosRequirement::unconstrained(),
            base_resources: ResourceVector::new(0.3, 1.5),
            bandwidth_kbps: 3.0,
            stream_rate_kbps: 64.0,
            constraints: PlacementConstraints::none(),
            tenant: None,
        };
        let mut msgs = std::collections::HashMap::new();
        for kind in [AlgorithmKind::Optimal, AlgorithmKind::Acp, AlgorithmKind::Rp, AlgorithmKind::Random] {
            let mut sys = sys0.clone();
            let mut composer = kind.build(ProbingConfig::default(), 7);
            let out = composer.compose(&mut sys, &board, &req, SimTime::ZERO);
            msgs.insert(kind, out.stats.probe_messages);
        }
        assert!(msgs[&AlgorithmKind::Optimal] > msgs[&AlgorithmKind::Acp]);
        assert!(msgs[&AlgorithmKind::Acp] > msgs[&AlgorithmKind::Random]);
    }

    #[test]
    fn bcp_composes_with_fixed_budget() {
        let (mut sys, board) = build(13);
        let req = request(&sys, 5);
        let mut bcp = BoundedProbingComposer::new(2, ProbingConfig::default(), 3);
        assert_eq!(bcp.name(), "bcp");
        assert_eq!(bcp.budget(), 2);
        let out = bcp.compose(&mut sys, &board, &req, SimTime::ZERO);
        assert!(out.session.is_some());
        // Budget 2 per function over a 3-function path: at most 6 probe
        // messages (some may be dropped at arrival).
        assert!(out.stats.probe_messages <= 6, "{} messages", out.stats.probe_messages);
    }

    #[test]
    fn bcp_budget_scales_probe_traffic() {
        let (sys0, board) = build_dense(14);
        let fns: Vec<FunctionId> =
            sys0.registry().ids().filter(|&f| sys0.candidates(f).len() >= 5).take(3).collect();
        let req = Request {
            id: RequestId(6),
            graph: FunctionGraph::path(fns),
            qos: QosRequirement::unconstrained(),
            base_resources: ResourceVector::new(0.3, 1.5),
            bandwidth_kbps: 3.0,
            stream_rate_kbps: 64.0,
            constraints: PlacementConstraints::none(),
            tenant: None,
        };
        let mut small = BoundedProbingComposer::new(1, ProbingConfig::default(), 3);
        let out_small = small.compose(&mut sys0.clone(), &board, &req, SimTime::ZERO);
        let mut large = BoundedProbingComposer::new(4, ProbingConfig::default(), 3);
        let out_large = large.compose(&mut sys0.clone(), &board, &req, SimTime::ZERO);
        assert!(out_large.stats.probe_messages > out_small.stats.probe_messages);
    }

    fn dense_request(sys: &StreamSystem, id: u64) -> Request {
        let fns: Vec<FunctionId> =
            sys.registry().ids().filter(|&f| sys.candidates(f).len() >= 5).take(3).collect();
        assert_eq!(fns.len(), 3, "dense system should have populous functions");
        Request {
            id: RequestId(id),
            graph: FunctionGraph::path(fns),
            qos: QosRequirement::unconstrained(),
            base_resources: ResourceVector::new(0.3, 1.5),
            bandwidth_kbps: 3.0,
            stream_rate_kbps: 64.0,
            constraints: PlacementConstraints::none(),
            tenant: None,
        }
    }

    /// The tentpole guarantee at the composer level: a probing composer
    /// under a multi-shard runtime must produce byte-identical sessions,
    /// message ledgers, path-cache accounting, lease stats, and node
    /// version vectors to the sequential composer — for ranked (ACP),
    /// random-final (SP), and random-hop (RP) strategies alike.
    #[test]
    fn compose_sharded_matches_compose_byte_for_byte() {
        let (sys0, board) = build_dense(15);
        for kind in [AlgorithmKind::Acp, AlgorithmKind::Sp, AlgorithmKind::Rp] {
            let mut sys_a = sys0.clone();
            let mut comp_a = kind.build(ProbingConfig::default(), 9);
            let mut outs_a = Vec::new();
            for id in 0..5u64 {
                let req = dense_request(&sys_a, 50 + id);
                outs_a.push(comp_a.compose(&mut sys_a, &board, &req, SimTime::ZERO));
            }
            for shards in [2usize, 4, 8] {
                let mut sys_b = sys0.clone();
                let mut comp_b = kind.build(ProbingConfig::default(), 9);
                let mut rt = ShardedRuntime::for_system(shards, &sys_b);
                for (id, a) in outs_a.iter().enumerate() {
                    let req = dense_request(&sys_b, 50 + id as u64);
                    let b = comp_b.compose_sharded(&mut sys_b, &board, &req, SimTime::ZERO, &mut rt);
                    assert_eq!(b.session, a.session, "{kind} shards={shards} req {id}");
                    assert_eq!(b.stats, a.stats, "{kind} shards={shards} req {id}");
                    assert_eq!(b.attempts, a.attempts, "{kind} shards={shards} req {id}");
                }
                assert_eq!(
                    sys_a.path_cache_stats(),
                    sys_b.path_cache_stats(),
                    "{kind} shards={shards}: cache accounting must replay identically"
                );
                assert_eq!(sys_a.lease_stats(), sys_b.lease_stats(), "{kind} shards={shards}");
                assert_eq!(sys_a.node_versions(), sys_b.node_versions(), "{kind} shards={shards}");
                assert_eq!(sys_a.session_count(), sys_b.session_count());
                assert!(rt.stats().scatter_epochs > 0 || kind == AlgorithmKind::Rp);
            }
        }
    }

    #[test]
    fn acp_equals_optimal_probe_count_at_full_ratio() {
        // At α = 1.0 ACP probes every candidate at every hop, like the
        // exhaustive search (modulo per-hop drops).
        let (sys0, board) = build(12);
        let req = request(&sys0, 3);
        let mut sys = sys0.clone();
        let mut acp = AcpComposer::new(
            ProbingConfig { probing_ratio: 1.0, max_live_probes: usize::MAX, ..ProbingConfig::default() },
            1,
        );
        let acp_out = acp.compose(&mut sys, &board, &req, SimTime::ZERO);
        let mut sys2 = sys0.clone();
        let mut opt = OptimalComposer::default();
        let opt_out = opt.compose(&mut sys2, &board, &req, SimTime::ZERO);
        // ACP spawns at most the exhaustive tree (drops prune subtrees).
        assert!(acp_out.stats.probe_messages <= opt_out.stats.probe_messages);
        assert!(acp_out.session.is_some() && opt_out.session.is_some());
    }
}
