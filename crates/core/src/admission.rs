//! Multi-tenant admission control at the composition entry point.
//!
//! Before a request reaches the probing protocol, the deputy consults an
//! [`AdmissionController`]: a per-tenant token bucket enforces the
//! tenant's contracted request rate, and a tier-specific congestion gate
//! sheds low-tier traffic when the φ-congestion estimate (derived from
//! the coarse [`GlobalStateBoard`](acp_state::GlobalStateBoard) residual
//! state via `congestion_estimate()`) crosses the tier's threshold —
//! `BestEffort` first, then `Silver`; `Gold` is never shed by the gate.
//!
//! The controller is pure policy: it never touches ground truth, draws
//! no randomness, and decides from exactly (tier, clock, congestion,
//! bucket state) — so a run with one `Gold` tenant and no rate limit
//! makes the same compose calls as a tenant-less run, byte-identically.

use acp_model::prelude::*;
use acp_simcore::SimTime;

/// A deterministic token bucket: `burst` capacity, refilled continuously
/// at `refill_per_sec`, one token per admitted request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TokenBucket {
    capacity: f64,
    tokens: f64,
    refill_per_sec: f64,
    last: SimTime,
}

impl TokenBucket {
    /// A bucket starting full.
    pub fn new(capacity: f64, refill_per_sec: f64) -> Self {
        assert!(capacity > 0.0 && refill_per_sec >= 0.0, "bucket needs positive capacity");
        TokenBucket { capacity, tokens: capacity, refill_per_sec, last: SimTime::ZERO }
    }

    /// Takes one token at `now`, refilling for the elapsed interval
    /// first. `false` means the caller is over its contracted rate.
    pub fn try_take(&mut self, now: SimTime) -> bool {
        let elapsed = now.saturating_since(self.last).as_secs_f64();
        self.last = now;
        self.tokens = (self.tokens + elapsed * self.refill_per_sec).min(self.capacity);
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            true
        } else {
            false
        }
    }

    /// Tokens currently available.
    pub fn tokens(&self) -> f64 {
        self.tokens
    }
}

/// Tier-specific congestion-shedding thresholds. A request is shed when
/// the congestion estimate is **at or above** its tier's threshold;
/// `Gold` has no threshold (never congestion-shed).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdmissionConfig {
    /// Shed `BestEffort` at or above this congestion.
    pub best_effort_threshold: f64,
    /// Shed `Silver` at or above this congestion (should exceed the
    /// best-effort threshold so tiers shed in order).
    pub silver_threshold: f64,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig { best_effort_threshold: 0.60, silver_threshold: 0.85 }
    }
}

impl AdmissionConfig {
    /// The shed threshold for `tier` (`+∞` for `Gold`).
    pub fn threshold(&self, tier: TenantTier) -> f64 {
        match tier {
            TenantTier::Gold => f64::INFINITY,
            TenantTier::Silver => self.silver_threshold,
            TenantTier::BestEffort => self.best_effort_threshold,
        }
    }
}

/// Outcome of one admission decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionDecision {
    /// Forward to the composition protocol.
    Admit,
    /// Shed: the tenant exceeded its token-bucket rate limit.
    ShedRateLimit,
    /// Shed: the congestion estimate crossed the tier's threshold.
    ShedCongestion,
}

impl AdmissionDecision {
    /// True when the request proceeds to composition.
    pub fn admitted(&self) -> bool {
        matches!(self, AdmissionDecision::Admit)
    }
}

/// Aggregate admission counters (all tenants).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AdmissionStats {
    /// Requests offered to the controller.
    pub offered: u64,
    /// Requests admitted.
    pub admitted: u64,
    /// Requests shed by a rate limit.
    pub shed_rate: u64,
    /// Requests shed by the congestion gate.
    pub shed_congestion: u64,
}

/// The per-tenant admission controller at the composer entry path.
#[derive(Debug, Clone)]
pub struct AdmissionController {
    config: AdmissionConfig,
    /// Per-tenant rate limiters, indexed by `TenantId.0`; `None` means
    /// uncapped.
    buckets: Vec<Option<TokenBucket>>,
    stats: AdmissionStats,
}

impl AdmissionController {
    /// A controller with the given thresholds and no rate limits.
    pub fn new(config: AdmissionConfig) -> Self {
        AdmissionController { config, buckets: Vec::new(), stats: AdmissionStats::default() }
    }

    /// Caps `tenant` at `refill_per_sec` requests/s with `burst` tokens
    /// of burst capacity.
    pub fn set_rate_limit(&mut self, tenant: TenantId, refill_per_sec: f64, burst: f64) {
        let idx = tenant.0 as usize;
        if self.buckets.len() <= idx {
            self.buckets.resize(idx + 1, None);
        }
        self.buckets[idx] = Some(TokenBucket::new(burst, refill_per_sec));
    }

    /// Decides one request: rate limit first (the tenant's own
    /// contract), then the tier's congestion gate.
    pub fn admit(
        &mut self,
        binding: TenantBinding,
        now: SimTime,
        congestion: f64,
    ) -> AdmissionDecision {
        self.stats.offered += 1;
        if let Some(Some(bucket)) = self.buckets.get_mut(binding.tenant.0 as usize) {
            if !bucket.try_take(now) {
                self.stats.shed_rate += 1;
                return AdmissionDecision::ShedRateLimit;
            }
        }
        if congestion >= self.config.threshold(binding.tier) {
            self.stats.shed_congestion += 1;
            return AdmissionDecision::ShedCongestion;
        }
        self.stats.admitted += 1;
        AdmissionDecision::Admit
    }

    /// Aggregate counters so far.
    pub fn stats(&self) -> AdmissionStats {
        self.stats
    }

    /// The configured thresholds.
    pub fn config(&self) -> &AdmissionConfig {
        &self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acp_simcore::SimDuration;

    const GOLD: TenantBinding = TenantBinding { tenant: TenantId(0), tier: TenantTier::Gold };
    const SILVER: TenantBinding = TenantBinding { tenant: TenantId(1), tier: TenantTier::Silver };
    const BEST: TenantBinding = TenantBinding { tenant: TenantId(2), tier: TenantTier::BestEffort };

    #[test]
    fn bucket_enforces_rate_and_refills() {
        let mut b = TokenBucket::new(2.0, 1.0);
        let t0 = SimTime::ZERO;
        assert!(b.try_take(t0));
        assert!(b.try_take(t0));
        assert!(!b.try_take(t0), "burst exhausted");
        let t1 = t0 + SimDuration::from_secs(1);
        assert!(b.try_take(t1), "one token refilled after 1s at 1/s");
        assert!(!b.try_take(t1));
    }

    #[test]
    fn tiers_shed_in_order_as_congestion_rises() {
        let mut ctl = AdmissionController::new(AdmissionConfig::default());
        let now = SimTime::ZERO;
        for (congestion, gold, silver, best) in [
            (0.10, true, true, true),
            (0.70, true, true, false),
            (0.90, true, false, false),
            (1.00, true, false, false),
        ] {
            assert_eq!(ctl.admit(GOLD, now, congestion).admitted(), gold);
            assert_eq!(ctl.admit(SILVER, now, congestion).admitted(), silver);
            assert_eq!(ctl.admit(BEST, now, congestion).admitted(), best);
        }
        let stats = ctl.stats();
        assert_eq!(stats.offered, 12);
        assert_eq!(stats.admitted, 7);
        assert_eq!(stats.shed_congestion, 5);
        assert_eq!(stats.shed_rate, 0);
    }

    #[test]
    fn rate_limit_applies_per_tenant_before_the_gate() {
        let mut ctl = AdmissionController::new(AdmissionConfig::default());
        ctl.set_rate_limit(BEST.tenant, 0.0, 1.0);
        let now = SimTime::ZERO;
        assert!(ctl.admit(BEST, now, 0.0).admitted());
        assert_eq!(ctl.admit(BEST, now, 0.0), AdmissionDecision::ShedRateLimit);
        assert!(ctl.admit(GOLD, now, 0.0).admitted(), "other tenants uncapped");
        assert_eq!(ctl.stats().shed_rate, 1);
    }

    #[test]
    fn gold_is_never_congestion_shed() {
        let mut ctl = AdmissionController::new(AdmissionConfig::default());
        assert!(ctl.admit(GOLD, SimTime::ZERO, 1.0).admitted());
        assert_eq!(ctl.config().threshold(TenantTier::Gold), f64::INFINITY);
    }
}
