//! The composition-probing protocol (Fig. 3 of the paper).
//!
//! [`probe_compose`] implements the distributed hop-by-hop probing shared
//! by ACP and the two probing baselines:
//!
//! 1. **Initialisation** — the deputy node creates the initial probe
//!    carrying the request and the probing ratio.
//! 2. **Per-hop processing** — advancing one function-graph vertex at a
//!    time (topological order), every live probe: checks QoS/resource
//!    conformance of the probed partial composition against *precise*
//!    local state (Eqs. 6–8), performs transient resource allocation,
//!    derives next-hop functions, discovers candidates, selects the
//!    `⌈α·k⌉` best under coarse global state ([`HopSelection::Ranked`]) or
//!    at random ([`HopSelection::Random`]), spawns child probes, and
//!    forwards them.
//! 3. **Optimal composition selection** — completed probes return to the
//!    deputy, which qualifies them (Eqs. 2–5) and picks the best by the
//!    congestion aggregation `φ(λ)` (Eq. 1) — or uniformly at random for
//!    the SP baseline.
//! 4. **Session setup** — confirmation converts transient reservations
//!    into permanent allocations.

use acp_model::prelude::*;
use acp_simcore::{SimDuration, SimTime};
use acp_state::GlobalStateBoard;
use rand::Rng;

use crate::overhead::OverheadStats;
use crate::selection::{
    arrival_accumulated, select_candidates_with, HopContext, HopSelection, SelectionScratch,
};

/// How the deputy picks among qualified completed compositions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FinalSelection {
    /// Minimise the congestion aggregation metric `φ(λ)` (ACP, RP).
    MinCongestion,
    /// Uniform random choice among qualified compositions (SP).
    Random,
}

/// Tunables of the probing protocol.
#[derive(Debug, Clone, PartialEq)]
pub struct ProbingConfig {
    /// Probing ratio `α ∈ (0, 1]`.
    pub probing_ratio: f64,
    /// Per-hop candidate selection strategy.
    pub hop_selection: HopSelection,
    /// Final selection at the deputy.
    pub final_selection: FinalSelection,
    /// Transient-reservation lifetime ("cancelled after a timeout period
    /// if the node does not receive a confirmation message").
    pub transient_timeout: SimDuration,
    /// Risk values within this distance count as "similar", falling back
    /// to the congestion function for ranking (§3.5).
    pub risk_epsilon: f64,
    /// Hard cap on concurrently live probes per request — the "probing
    /// overhead limit" of §3.4 (footnote 9). Lowest-risk probes survive
    /// truncation.
    pub max_live_probes: usize,
    /// Fixed per-hop candidate budget overriding the ratio-derived quota
    /// (still clamped to the candidate count). `None` uses `⌈α·k⌉`. This
    /// is the PlanetLab prototype's *bounded composition probing*
    /// (footnote 10): a simpler ACP variant with a constant probe budget
    /// per function instead of a tunable ratio.
    pub quota_override: Option<usize>,
}

impl Default for ProbingConfig {
    fn default() -> Self {
        ProbingConfig {
            probing_ratio: 0.3,
            hop_selection: HopSelection::Ranked,
            final_selection: FinalSelection::MinCongestion,
            transient_timeout: SimDuration::from_secs(30),
            risk_epsilon: 0.05,
            max_live_probes: 4_096,
            quota_override: None,
        }
    }
}

/// Result of one probing run.
#[derive(Debug, Clone)]
pub struct ProbingOutcome {
    /// The established session, if composition succeeded.
    pub session: Option<SessionId>,
    /// Message ledger for this request.
    pub stats: OverheadStats,
    /// Number of probes that reached the sink.
    pub completed_probes: usize,
    /// Number of completed probes that passed final qualification.
    pub qualified_compositions: usize,
}

/// Runs the probing protocol for `request` and, on success, commits the
/// chosen composition as a session.
///
/// Probing consumes transient reservations; whatever the outcome, no
/// transient state belonging to `request` survives this call (confirmation
/// converts the winner's reservations, failure releases them).
pub fn probe_compose<R: Rng + ?Sized>(
    system: &mut StreamSystem,
    board: &GlobalStateBoard,
    request: &Request,
    now: SimTime,
    config: &ProbingConfig,
    rng: &mut R,
) -> ProbingOutcome {
    let mut stats = OverheadStats::new();
    let expiry = now + config.transient_timeout;
    let order = request.graph.topological_order();

    // Step 1: the deputy spawns the initial probe.
    let mut frontier = vec![crate::probe::Probe::initial(&request.graph)];

    // Step 2: distributed hop-by-hop probe processing.
    //
    // The probing ratio bounds the candidates probed **per function**:
    // "if there are ten candidate components for the function F_i and the
    // probing ratio α = 0.3, then we can probe 0.3 × 10 = 3 candidate
    // components" (§3.4). Every live probe proposes ranked next-hop
    // candidates; the quota of ⌈α·k⌉ *distinct* candidates is then filled
    // best-proposal-first (one probe per candidate), so the set of live
    // probes never exceeds the per-function quota. This is what makes the
    // per-hop selection decision matter: a wasted pick cannot be papered
    // over by exponential probe fan-out.
    // Scratch buffers hoisted out of the per-vertex loop: probing a
    // figure-scale workload runs this loop thousands of times, and the
    // per-hop vectors/sets below otherwise reallocate on every vertex.
    let mut proposals: Vec<(usize, usize, crate::selection::CandidatePlan)> = Vec::new();
    // Predecessor arena: all probes' `(edge, component, acc)` triples for
    // the current vertex live contiguously in `pred_buf`; `pred_ranges`
    // maps probe index → its slice. Hop contexts borrow from the arena, so
    // advancing a vertex allocates nothing per probe.
    let mut pred_buf: Vec<(usize, ComponentId, Qos)> = Vec::new();
    let mut pred_ranges: Vec<(usize, usize)> = Vec::new();
    let mut probed: std::collections::HashSet<ComponentId> = std::collections::HashSet::new();
    let mut next_frontier: Vec<crate::probe::Probe> = Vec::new();
    let mut scratch = SelectionScratch::default();

    for &vertex in &order {
        let function = request.graph.function(vertex);
        let k = system.candidates(function).len();
        let quota = match config.quota_override {
            Some(budget) => budget.clamp(usize::from(k > 0), k.max(1)),
            None => crate::selection::probe_quota(k, config.probing_ratio),
        }
        .min(config.max_live_probes);

        // Every live probe proposes its ranked candidate plans. First
        // gather all probes' assigned predecessors — (edge index,
        // component, acc) — into the arena, then run selection borrowing
        // slices of it.
        proposals.clear();
        pred_buf.clear();
        pred_ranges.clear();
        for probe in &frontier {
            let start = pred_buf.len();
            for (e, &(u, v)) in request.graph.edges().iter().enumerate() {
                if v == vertex {
                    debug_assert!(probe.assignment[u].is_some(), "topological order violated");
                    pred_buf.push((
                        e,
                        probe.assignment[u].expect("predecessor assigned in topo order"),
                        probe.accumulated[u].expect("accumulated set with assignment"),
                    ));
                }
            }
            pred_ranges.push((start, pred_buf.len()));
        }
        for (probe_idx, &(s, e)) in pred_ranges.iter().enumerate() {
            let ctx = HopContext { request, vertex, predecessors: &pred_buf[s..e] };
            let plans = select_candidates_with(
                system,
                board,
                &ctx,
                config.hop_selection,
                config.probing_ratio,
                config.risk_epsilon,
                rng,
                &mut stats,
                &mut scratch,
            );
            for (rank, plan) in plans.into_iter().enumerate() {
                proposals.push((rank, probe_idx, plan));
            }
        }
        // Fill the per-function quota best-rank-first, breaking rank ties
        // by the proposing probe's accumulated risk; at most one probe is
        // forwarded per distinct candidate.
        proposals.sort_by(|a, b| {
            a.0.cmp(&b.0).then_with(|| {
                let ra = frontier[a.1].worst_accumulated().risk_ratio(&request.qos);
                let rb = frontier[b.1].worst_accumulated().risk_ratio(&request.qos);
                ra.total_cmp(&rb)
            })
        });

        probed.clear();
        next_frontier.clear();
        for (_, probe_idx, plan) in proposals.drain(..) {
            if probed.len() >= quota {
                break;
            }
            if !probed.insert(plan.component) {
                continue; // candidate already probed for this request
            }
            let (s, e) = pred_ranges[probe_idx];
            let ctx = HopContext { request, vertex, predecessors: &pred_buf[s..e] };
            let probe = &frontier[probe_idx];

            // Spawn and forward the probe (one hop message).
            stats.probes_spawned += 1;
            stats.probe_messages += 1;

            // --- per-hop processing at the candidate's node, against
            // --- precise local state ---
            let cand_qos = system.effective_component_qos(plan.component);
            let acc = arrival_accumulated(&plan, &ctx, cand_qos);
            let demand = request.vertex_demand(system.registry(), vertex);
            let avail = system.node_available(plan.component.node);
            let link_avail = plan
                .incoming
                .iter()
                .fold(f64::INFINITY, |m, (_, p)| m.min(system.virtual_path_available(p)));
            // Eqs. 6–8 with precise values (candidate QoS and link QoS
            // already folded into `acc`, so pass zeros for those).
            if is_unqualified(
                acc,
                Qos::ZERO,
                Qos::ZERO,
                &request.qos,
                &avail,
                &demand,
                link_avail,
                request.bandwidth_kbps,
            ) {
                stats.probes_dropped += 1;
                continue;
            }
            // Transient resource allocation (idempotent per
            // request+component; footnote 7).
            if !system.reserve_component_transient(request.id, plan.component, demand, expiry) {
                stats.probes_dropped += 1;
                continue;
            }
            let mut link_ok = true;
            for (edge, path) in &plan.incoming {
                if !path.is_colocated()
                    && !system.reserve_path_transient(request.id, *edge, path, request.bandwidth_kbps, expiry)
                {
                    link_ok = false;
                    break;
                }
            }
            if !link_ok {
                stats.probes_dropped += 1;
                continue;
            }
            next_frontier.push(probe.extend(vertex, plan.component, &plan.incoming, acc));
        }
        std::mem::swap(&mut frontier, &mut next_frontier);
        if frontier.is_empty() {
            break;
        }
    }

    // Step 3: completed probes return to the deputy.
    let mut compositions: Vec<Composition> = frontier
        .into_iter()
        .filter(|p| p.is_complete())
        .filter_map(|p| p.into_composition())
        .collect();
    stats.probes_returned += compositions.len() as u64;
    let completed = compositions.len();

    // Qualification (Eqs. 2–5) is re-validated inside the commit; here we
    // order candidates per the final-selection policy and report how many
    // completed probes look qualified. Resource/bandwidth rejections are
    // counted as qualified at this stage because the request's own
    // transient holds still depress availability — the commit path
    // releases them before re-checking.
    let qualified = compositions
        .iter()
        .filter(|c| {
            matches!(
                system.qualify(request, c),
                Ok(())
                    | Err(AdmissionError::InsufficientResources { .. })
                    | Err(AdmissionError::InsufficientBandwidth { .. })
            )
        })
        .count();

    match config.final_selection {
        FinalSelection::MinCongestion => {
            let mut keyed: Vec<(f64, Composition)> = compositions
                .into_iter()
                .map(|c| (congestion_aggregation(system, request, &c), c))
                .collect();
            keyed.sort_by(|a, b| a.0.total_cmp(&b.0));
            compositions = keyed.into_iter().map(|(_, c)| c).collect();
        }
        FinalSelection::Random => {
            use rand::seq::SliceRandom;
            compositions.shuffle(rng);
        }
    }

    // Step 4: session setup — first composition that commits wins. The
    // first commit attempt releases the request's transient holds
    // (confirmation supersedes reservation).
    let mut session = None;
    for composition in compositions {
        let assignment_len = composition.assignment.len() as u64;
        match system.commit_session(request, composition) {
            Ok(sid) => {
                stats.confirmation_messages += assignment_len;
                session = Some(sid);
                break;
            }
            Err(_) => continue,
        }
    }
    if session.is_none() {
        system.release_request_transients(request.id);
    }

    ProbingOutcome { session, stats, completed_probes: completed, qualified_compositions: qualified }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acp_state::GlobalStateConfig;
    use acp_topology::{InetConfig, Overlay, OverlayConfig, OverlayNodeId};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn build(seed: u64, nodes: usize) -> (StreamSystem, GlobalStateBoard) {
        let mut rng = StdRng::seed_from_u64(seed);
        let ip = InetConfig { nodes: 250, ..InetConfig::default() }.generate(&mut rng);
        let overlay = Overlay::build(&ip, &OverlayConfig { stream_nodes: nodes, neighbors: 4 }, &mut rng);
        let sys = StreamSystem::generate(
            overlay,
            FunctionRegistry::standard(),
            &SystemConfig::default(),
            &mut rng,
        );
        let board = GlobalStateBoard::new(&sys, GlobalStateConfig::default());
        (sys, board)
    }

    fn path_request(sys: &StreamSystem, id: u64, len: usize) -> Request {
        let fns: Vec<FunctionId> =
            sys.registry().ids().filter(|&f| sys.candidates(f).len() >= 2).take(len).collect();
        assert_eq!(fns.len(), len, "not enough populated functions");
        Request {
            id: RequestId(id),
            graph: FunctionGraph::path(fns),
            qos: QosRequirement::unconstrained(),
            base_resources: ResourceVector::new(0.5, 2.0),
            bandwidth_kbps: 5.0,
            stream_rate_kbps: 100.0,
            constraints: PlacementConstraints::none(),
        }
    }

    #[test]
    fn composes_simple_path_request() {
        let (mut sys, board) = build(1, 40);
        let req = path_request(&sys, 1, 3);
        let mut rng = StdRng::seed_from_u64(1);
        let out = probe_compose(&mut sys, &board, &req, SimTime::ZERO, &ProbingConfig::default(), &mut rng);
        assert!(out.session.is_some(), "loose request must compose");
        assert!(out.completed_probes >= 1);
        assert!(out.stats.probe_messages > 0);
        assert_eq!(sys.session_count(), 1);
        // No transient residue on any node.
        for i in 0..sys.node_count() {
            assert_eq!(sys.node(OverlayNodeId(i as u32)).transient_count(), 0);
        }
    }

    #[test]
    fn composes_dag_request() {
        let (mut sys, board) = build(2, 40);
        let fns: Vec<FunctionId> =
            sys.registry().ids().filter(|&f| sys.candidates(f).len() >= 2).take(5).collect();
        let graph = FunctionGraph::split_merge(
            vec![fns[0]],
            vec![fns[1]],
            vec![fns[2]],
            fns[3],
            vec![fns[4]],
        );
        let req = Request {
            id: RequestId(2),
            graph,
            qos: QosRequirement::unconstrained(),
            base_resources: ResourceVector::new(0.3, 1.0),
            bandwidth_kbps: 2.0,
            stream_rate_kbps: 64.0,
            constraints: PlacementConstraints::none(),
        };
        let mut rng = StdRng::seed_from_u64(2);
        let out = probe_compose(&mut sys, &board, &req, SimTime::ZERO, &ProbingConfig::default(), &mut rng);
        assert!(out.session.is_some(), "DAG request must compose");
        let session = sys.sessions().next().unwrap();
        assert!(session.composition.is_shape_valid(&req.graph));
    }

    #[test]
    fn committed_composition_is_qualified() {
        let (mut sys, board) = build(3, 40);
        let req = path_request(&sys, 3, 4);
        let mut rng = StdRng::seed_from_u64(3);
        let out = probe_compose(&mut sys, &board, &req, SimTime::ZERO, &ProbingConfig::default(), &mut rng);
        let sid = out.session.expect("composed");
        let composition = sys.session(sid).unwrap().composition.clone();
        // After commit the composition occupies its own resources, so
        // re-qualifying the same composition may fail on resources — but
        // shape, function and rate constraints must hold.
        assert!(composition.is_shape_valid(&req.graph));
        for v in req.graph.vertices() {
            assert_eq!(sys.component(composition.assignment[v]).function, req.graph.function(v));
        }
    }

    #[test]
    fn impossible_qos_fails_and_leaves_no_residue() {
        let (mut sys, board) = build(4, 40);
        let mut req = path_request(&sys, 4, 3);
        req.qos = QosRequirement::new(SimDuration::from_micros(1), LossRate::ZERO);
        let mut rng = StdRng::seed_from_u64(4);
        let out = probe_compose(&mut sys, &board, &req, SimTime::ZERO, &ProbingConfig::default(), &mut rng);
        assert!(out.session.is_none());
        assert_eq!(sys.session_count(), 0);
        for i in 0..sys.node_count() {
            assert_eq!(sys.node(OverlayNodeId(i as u32)).transient_count(), 0, "transient residue");
        }
    }

    #[test]
    fn higher_ratio_probes_more() {
        let (mut sys, board) = build(5, 40);
        let req = path_request(&sys, 5, 3);
        let mut rng = StdRng::seed_from_u64(5);
        let lo_cfg = ProbingConfig { probing_ratio: 0.1, ..ProbingConfig::default() };
        let lo = probe_compose(&mut sys.clone(), &board, &req, SimTime::ZERO, &lo_cfg, &mut rng);
        let hi_cfg = ProbingConfig { probing_ratio: 0.9, ..ProbingConfig::default() };
        let hi = probe_compose(&mut sys, &board, &req, SimTime::ZERO, &hi_cfg, &mut rng);
        assert!(
            hi.stats.probe_messages > lo.stats.probe_messages,
            "α=0.9 ({}) should outprobe α=0.1 ({})",
            hi.stats.probe_messages,
            lo.stats.probe_messages
        );
    }

    #[test]
    fn probe_budget_caps_growth() {
        let (mut sys, board) = build(6, 60);
        let req = path_request(&sys, 6, 5);
        let mut rng = StdRng::seed_from_u64(6);
        let cfg = ProbingConfig { probing_ratio: 1.0, max_live_probes: 8, ..ProbingConfig::default() };
        let out = probe_compose(&mut sys, &board, &req, SimTime::ZERO, &cfg, &mut rng);
        assert!(out.completed_probes <= 8);
    }

    #[test]
    fn random_final_selection_still_commits_valid_session() {
        let (mut sys, board) = build(7, 40);
        let req = path_request(&sys, 7, 3);
        let mut rng = StdRng::seed_from_u64(7);
        let cfg = ProbingConfig { final_selection: FinalSelection::Random, ..ProbingConfig::default() };
        let out = probe_compose(&mut sys, &board, &req, SimTime::ZERO, &cfg, &mut rng);
        assert!(out.session.is_some());
    }

    #[test]
    fn min_congestion_beats_random_on_phi() {
        // Statistical: over several requests the MinCongestion policy
        // should pick compositions with φ no worse on average.
        let (sys0, board) = build(8, 50);
        let mut phi_min = 0.0;
        let mut phi_rand = 0.0;
        let mut counted = 0;
        for trial in 0..10u64 {
            let req = path_request(&sys0, 100 + trial, 3);
            let mut rng_a = StdRng::seed_from_u64(trial);
            let mut rng_b = StdRng::seed_from_u64(trial);
            let mut sys_a = sys0.clone();
            let out_a = probe_compose(
                &mut sys_a,
                &board,
                &req,
                SimTime::ZERO,
                &ProbingConfig { final_selection: FinalSelection::MinCongestion, ..ProbingConfig::default() },
                &mut rng_a,
            );
            let mut sys_b = sys0.clone();
            let out_b = probe_compose(
                &mut sys_b,
                &board,
                &req,
                SimTime::ZERO,
                &ProbingConfig { final_selection: FinalSelection::Random, ..ProbingConfig::default() },
                &mut rng_b,
            );
            if let (Some(sa), Some(sb)) = (out_a.session, out_b.session) {
                let ca = sys_a.session(sa).unwrap().composition.clone();
                let cb = sys_b.session(sb).unwrap().composition.clone();
                // Evaluate both φ against the pristine system.
                let mut fresh = sys0.clone();
                fresh.release_request_transients(req.id);
                phi_min += congestion_aggregation(&fresh, &req, &ca);
                phi_rand += congestion_aggregation(&fresh, &req, &cb);
                counted += 1;
            }
        }
        assert!(counted >= 5, "most requests should compose");
        assert!(phi_min <= phi_rand + 1e-9, "min-φ {phi_min} vs random {phi_rand}");
    }
}
