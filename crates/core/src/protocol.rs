//! The composition-probing protocol (Fig. 3 of the paper).
//!
//! [`probe_compose`] implements the distributed hop-by-hop probing shared
//! by ACP and the two probing baselines:
//!
//! 1. **Initialisation** — the deputy node creates the initial probe
//!    carrying the request and the probing ratio.
//! 2. **Per-hop processing** — advancing one function-graph vertex at a
//!    time (topological order), every live probe: checks QoS/resource
//!    conformance of the probed partial composition against *precise*
//!    local state (Eqs. 6–8), performs transient resource allocation,
//!    derives next-hop functions, discovers candidates, selects the
//!    `⌈α·k⌉` best under coarse global state ([`HopSelection::Ranked`]) or
//!    at random ([`HopSelection::Random`]), spawns child probes, and
//!    forwards them.
//! 3. **Optimal composition selection** — completed probes return to the
//!    deputy, which qualifies them (Eqs. 2–5) and picks the best by the
//!    congestion aggregation `φ(λ)` (Eq. 1) — or uniformly at random for
//!    the SP baseline.
//! 4. **Session setup** — confirmation converts transient reservations
//!    into permanent allocations.
//!
//! # Two-phase setup under a lossy transport
//!
//! Steps 2 and 4 are the two phases of a reservation protocol: probes
//! place **transient leases** on candidate nodes and links (phase 1), and
//! the confirmation promotes the winner's leases to committed residuals
//! (phase 2). [`probe_compose_with`] subjects both phases to message
//! faults ([`MessageFaultConfig`]): probe messages may be dropped or
//! delayed in transit (a probe whose cumulative transport delay reaches
//! the lease timeout is stale and discarded), and the confirmation itself
//! may be lost — leaving the winner's leases **orphaned** until the
//! expiry-driven reclamation sweep recovers them ("cancelled after a
//! timeout period if the node does not receive a confirmation message",
//! §3.3). A lost confirmation may also resurface later as a duplicate
//! delivery (stale ack); commits are idempotent per request, so a request
//! that already holds a session rejects the duplicate instead of
//! double-committing residuals.
//!
//! Fault-induced failures are retried with deterministic exponential
//! backoff plus seeded jitter, escalating the probing ratio α via
//! [`AlphaEscalator`] on consecutive failures. With every fault rate at
//! zero the two-phase path performs *exactly* the RNG draws and state
//! mutations of the plain path — the fault injector consumes no
//! randomness for disabled classes — so enabling it is byte-identical.

use acp_model::prelude::*;
use acp_simcore::{
    DeterministicRng, MessageFaultConfig, MessageFaultInjector, SimDuration, SimTime, Transport,
};
use acp_state::GlobalStateBoard;
use rand::rngs::StdRng;
use rand::Rng;

use crate::overhead::OverheadStats;
use crate::selection::{
    arrival_accumulated, select_candidates_with, HopContext, HopSelection, SelectionScratch,
};
use crate::tuning_control::{AlphaEscalator, EscalationConfig};

/// How the deputy picks among qualified completed compositions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FinalSelection {
    /// Minimise the congestion aggregation metric `φ(λ)` (ACP, RP).
    MinCongestion,
    /// Uniform random choice among qualified compositions (SP).
    Random,
}

/// Tunables of the probing protocol.
#[derive(Debug, Clone, PartialEq)]
pub struct ProbingConfig {
    /// Probing ratio `α ∈ (0, 1]`.
    pub probing_ratio: f64,
    /// Per-hop candidate selection strategy.
    pub hop_selection: HopSelection,
    /// Final selection at the deputy.
    pub final_selection: FinalSelection,
    /// Transient-reservation lifetime ("cancelled after a timeout period
    /// if the node does not receive a confirmation message").
    pub transient_timeout: SimDuration,
    /// Risk values within this distance count as "similar", falling back
    /// to the congestion function for ranking (§3.5).
    pub risk_epsilon: f64,
    /// Hard cap on concurrently live probes per request — the "probing
    /// overhead limit" of §3.4 (footnote 9). Lowest-risk probes survive
    /// truncation.
    pub max_live_probes: usize,
    /// Fixed per-hop candidate budget overriding the ratio-derived quota
    /// (still clamped to the candidate count). `None` uses `⌈α·k⌉`. This
    /// is the PlanetLab prototype's *bounded composition probing*
    /// (footnote 10): a simpler ACP variant with a constant probe budget
    /// per function instead of a tunable ratio.
    pub quota_override: Option<usize>,
}

impl Default for ProbingConfig {
    fn default() -> Self {
        ProbingConfig {
            probing_ratio: 0.3,
            hop_selection: HopSelection::Ranked,
            final_selection: FinalSelection::MinCongestion,
            transient_timeout: SimDuration::from_secs(30),
            risk_epsilon: 0.05,
            max_live_probes: 4_096,
            quota_override: None,
        }
    }
}

/// Transport-fault and retry tunables of the two-phase setup path.
#[derive(Debug, Clone, PartialEq)]
pub struct SetupConfig {
    /// Message-fault rates applied to probe and confirmation traffic.
    pub faults: MessageFaultConfig,
    /// Maximum probing rounds per request (1 = no retry).
    pub max_attempts: u32,
    /// Backoff before the first retry.
    pub backoff_base: SimDuration,
    /// Multiplicative backoff growth per retry.
    pub backoff_factor: f64,
    /// Uniform jitter added to each backoff, as a fraction of it (drawn
    /// from the seeded backoff stream — deterministic).
    pub jitter_frac: f64,
    /// Probing-ratio escalation on consecutive failed attempts.
    pub escalation: EscalationConfig,
}

impl Default for SetupConfig {
    fn default() -> Self {
        SetupConfig {
            faults: MessageFaultConfig::default(),
            max_attempts: 6,
            backoff_base: SimDuration::from_millis(250),
            backoff_factor: 2.0,
            jitter_frac: 0.25,
            escalation: EscalationConfig::default(),
        }
    }
}

/// Per-request ledger of the two-phase setup path: transport faults
/// suffered, retries spent, and lease housekeeping.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SetupStats {
    /// Probing rounds run (1 = first attempt succeeded or no retry).
    pub attempts: u64,
    /// Retries after fault-induced failures (`attempts - 1` when > 0).
    pub retries: u64,
    /// Probe messages dropped by the transport.
    pub probes_lost: u64,
    /// Probe messages delayed by the transport.
    pub probes_delayed: u64,
    /// Probes discarded because transport delay outlived the lease
    /// timeout.
    pub stale_probes_discarded: u64,
    /// Confirmation messages lost before reaching the winner's nodes.
    pub confirms_lost: u64,
    /// Late duplicate confirmations rejected by the idempotent-commit
    /// guard.
    pub stale_acks_rejected: u64,
    /// Late duplicate confirmations that salvaged an otherwise-failed
    /// request.
    pub stale_acks_recovered: u64,
    /// Leases left orphaned by a fault-hit failure (recovered later by
    /// the reclamation sweep).
    pub leases_orphaned: u64,
    /// Leases reclaimed by the backoff-time sweeps inside the retry loop.
    pub leases_reclaimed: u64,
    /// Requests lost *to faults*: the request failed and its conclusive
    /// attempt was itself fault-hit. A fault-touched request whose final
    /// (escalated, fault-free) attempt fails cleanly is counted as a
    /// legitimate failure instead — full fault-free probing proved the
    /// system could not serve it.
    pub fault_failures: u64,
}

impl SetupStats {
    /// True when at least one message fault touched this request's setup.
    pub fn fault_hit(&self) -> bool {
        self.probes_lost + self.probes_delayed + self.confirms_lost > 0
    }
}

impl std::ops::Add for SetupStats {
    type Output = SetupStats;
    fn add(self, rhs: SetupStats) -> SetupStats {
        SetupStats {
            attempts: self.attempts + rhs.attempts,
            retries: self.retries + rhs.retries,
            probes_lost: self.probes_lost + rhs.probes_lost,
            probes_delayed: self.probes_delayed + rhs.probes_delayed,
            stale_probes_discarded: self.stale_probes_discarded + rhs.stale_probes_discarded,
            confirms_lost: self.confirms_lost + rhs.confirms_lost,
            stale_acks_rejected: self.stale_acks_rejected + rhs.stale_acks_rejected,
            stale_acks_recovered: self.stale_acks_recovered + rhs.stale_acks_recovered,
            leases_orphaned: self.leases_orphaned + rhs.leases_orphaned,
            leases_reclaimed: self.leases_reclaimed + rhs.leases_reclaimed,
            fault_failures: self.fault_failures + rhs.fault_failures,
        }
    }
}

impl std::ops::AddAssign for SetupStats {
    fn add_assign(&mut self, rhs: SetupStats) {
        *self = *self + rhs;
    }
}

impl std::iter::Sum for SetupStats {
    fn sum<I: Iterator<Item = SetupStats>>(iter: I) -> SetupStats {
        iter.fold(SetupStats::default(), |a, b| a + b)
    }
}

/// Compile-time selection of the setup path.
///
/// The probing protocol is generic over its setup mode; every fault,
/// retry, and backoff branch is gated on [`SetupMode::TWO_PHASE`], a
/// constant, so the [`SinglePhase`] monomorphization compiles down to
/// the plain lossless protocol — no injector state, no backoff stream,
/// no retry loop, no lease-ledger pressure — while [`TwoPhase`] carries
/// the full reservation machinery. The state machine is identical in
/// both; only the dispatch moved from run time to compile time.
pub trait SetupMode: std::fmt::Debug {
    /// `true` on the two-phase path. Gates every fault/retry branch, so
    /// the single-phase composer carries none of them in its code.
    const TWO_PHASE: bool;

    /// Probing rounds allowed per request (1 = no retry).
    fn max_attempts(&self) -> u32 {
        1
    }

    /// Probing-ratio escalation applied on consecutive failed attempts.
    fn escalation(&self) -> EscalationConfig {
        EscalationConfig::default()
    }

    /// Deterministic backoff (plus seeded jitter) before retrying after
    /// failed attempt number `attempt`.
    fn backoff_delay(&mut self, _attempt: u32) -> SimDuration {
        SimDuration::ZERO
    }

    /// Does this forwarded probe get dropped in transit?
    fn probe_dropped(&mut self) -> bool {
        false
    }

    /// Transit delay suffered by this forwarded probe.
    fn probe_delay(&mut self) -> SimDuration {
        SimDuration::ZERO
    }

    /// Does this session-confirmation message get lost in transit?
    fn confirm_lost(&mut self) -> bool {
        false
    }

    /// Does a lost confirmation later resurface as a stale ack?
    fn stale_ack_resurfaces(&mut self) -> bool {
        false
    }
}

/// The plain single-phase setup path: reliable transport, one probing
/// round, no retry state. A zero-sized type — composing with it is the
/// pre-two-phase protocol, bit for bit.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SinglePhase;

impl SetupMode for SinglePhase {
    const TWO_PHASE: bool = false;
}

/// Mutable state of the two-phase setup path carried across requests:
/// the message transport (usually a seeded
/// [`MessageFaultInjector`], or any other [`Transport`]) and the seeded
/// backoff-jitter stream.
#[derive(Debug, Clone)]
pub struct TwoPhase<T: Transport = MessageFaultInjector> {
    config: SetupConfig,
    transport: T,
    backoff_rng: StdRng,
}

/// The historical name of [`TwoPhase`] over the fault-injecting
/// transport, kept for call sites predating the mode split.
pub type SetupState = TwoPhase<MessageFaultInjector>;

impl TwoPhase<MessageFaultInjector> {
    /// Creates the setup state. All randomness derives from `seed` via
    /// label-separated streams, independent of the composer's selection
    /// RNG.
    pub fn new(seed: u64, config: SetupConfig) -> Self {
        let transport = MessageFaultInjector::new(seed, config.faults.clone());
        TwoPhase::with_transport(seed, config, transport)
    }

    /// True when every fault class is disabled — the two-phase path then
    /// behaves byte-identically to the plain path.
    pub fn is_inert(&self) -> bool {
        self.config.faults.is_inert()
    }
}

impl<T: Transport> TwoPhase<T> {
    /// Creates two-phase setup state over an explicit transport. The
    /// backoff-jitter stream derives from `seed`, independent of the
    /// transport's own randomness (if any).
    pub fn with_transport(seed: u64, config: SetupConfig, transport: T) -> Self {
        let root = DeterministicRng::new(seed);
        TwoPhase { transport, backoff_rng: root.stream("setup/backoff"), config }
    }

    /// The setup configuration in effect.
    pub fn config(&self) -> &SetupConfig {
        &self.config
    }
}

impl<T: Transport> SetupMode for TwoPhase<T> {
    const TWO_PHASE: bool = true;

    fn max_attempts(&self) -> u32 {
        self.config.max_attempts.max(1)
    }

    fn escalation(&self) -> EscalationConfig {
        self.config.escalation
    }

    fn backoff_delay(&mut self, attempt: u32) -> SimDuration {
        let backoff = self.config.backoff_base.as_secs_f64()
            * self.config.backoff_factor.powi(attempt as i32 - 1);
        let jitter = backoff * self.config.jitter_frac * self.backoff_rng.gen::<f64>();
        SimDuration::from_secs_f64(backoff + jitter)
    }

    fn probe_dropped(&mut self) -> bool {
        self.transport.probe_dropped()
    }

    fn probe_delay(&mut self) -> SimDuration {
        self.transport.probe_delay()
    }

    fn confirm_lost(&mut self) -> bool {
        self.transport.confirm_lost()
    }

    fn stale_ack_resurfaces(&mut self) -> bool {
        self.transport.stale_ack_resurfaces()
    }
}

/// Result of one probing run.
#[derive(Debug, Clone)]
pub struct ProbingOutcome {
    /// The established session, if composition succeeded.
    pub session: Option<SessionId>,
    /// Message ledger for this request.
    pub stats: OverheadStats,
    /// Number of probes that reached the sink (summed over attempts).
    pub completed_probes: usize,
    /// Number of completed probes that passed final qualification.
    pub qualified_compositions: usize,
    /// Probing rounds run (1 unless fault-induced retries happened).
    pub attempts: u32,
    /// Two-phase setup ledger (all-zero on the plain path).
    pub setup: SetupStats,
}

/// Result of one probing attempt inside the retry loop.
struct AttemptOutcome {
    session: Option<SessionId>,
    completed: usize,
    qualified: usize,
    /// A message fault defeated this attempt (dropped/stale probe thinned
    /// the tree, or the confirmation was lost).
    faulted: bool,
}

/// Runs the probing protocol for `request` and, on success, commits the
/// chosen composition as a session.
///
/// Probing consumes transient reservations; whatever the outcome, no
/// transient state belonging to `request` survives this call (confirmation
/// converts the winner's reservations, failure releases them). This is the
/// plain (reliable-transport) path — see [`probe_compose_with`] for the
/// two-phase path under message faults.
pub fn probe_compose<R: Rng + ?Sized>(
    system: &mut StreamSystem,
    board: &GlobalStateBoard,
    request: &Request,
    now: SimTime,
    config: &ProbingConfig,
    rng: &mut R,
) -> ProbingOutcome {
    compose_with_mode(system, board, request, now, config, &mut SinglePhase, rng)
}

/// Runtime-dispatch compatibility wrapper over [`compose_with_mode`]:
/// `None` selects [`SinglePhase`], `Some` the fault-injecting
/// [`TwoPhase`]. New call sites should pick the mode at construction
/// time instead (the composers in [`crate::algorithms`] do).
pub fn probe_compose_with<R: Rng + ?Sized>(
    system: &mut StreamSystem,
    board: &GlobalStateBoard,
    request: &Request,
    now: SimTime,
    config: &ProbingConfig,
    setup: Option<&mut SetupState>,
    rng: &mut R,
) -> ProbingOutcome {
    match setup {
        Some(state) => compose_with_mode(system, board, request, now, config, state, rng),
        None => compose_with_mode(system, board, request, now, config, &mut SinglePhase, rng),
    }
}

/// The probing protocol, monomorphized over its [`SetupMode`].
///
/// With [`SinglePhase`] this is the plain lossless path: the retry loop,
/// fault sampling, backoff draws, and orphan accounting all compile away
/// behind `M::TWO_PHASE`. With [`TwoPhase`] it is the setup path under a
/// lossy message transport with fault-induced retries (see the module
/// docs) — byte-identical to single-phase while every fault rate is
/// zero. When a confirmation was lost in flight the request's leases are
/// **not** released (the deputy cannot tell a lost confirm from a
/// committed session whose ack was lost, so releasing is unsafe and
/// cleanup is left to the expiry-driven reclamation sweep); every other
/// failure releases them as before. A fault-induced retry also keeps the
/// failed attempt's leases in place: re-probing a still-leased candidate
/// refreshes the existing reservation (an idempotent `reused` touch,
/// footnote 7) instead of churning a release/create pair.
pub fn compose_with_mode<M: SetupMode, R: Rng + ?Sized>(
    system: &mut StreamSystem,
    board: &GlobalStateBoard,
    request: &Request,
    now: SimTime,
    config: &ProbingConfig,
    mode: &mut M,
    rng: &mut R,
) -> ProbingOutcome {
    compose_with_mode_in(system, board, request, now, config, mode, rng, None)
}

/// [`compose_with_mode`] under an optional [`ShardedRuntime`]: with
/// `Some` (and more than one shard) the RNG-free stages — ranked per-hop
/// candidate scoring, final-selection qualification/φ scoring, and the
/// backoff-time reclamation sweep — fan out across shard workers and
/// merge deterministically, byte-identical to the sequential path. All
/// result-affecting RNG draws (random hop selection, random final pick,
/// fault sampling, backoff jitter) stay on the coordinator in sequential
/// order. `None` (or one shard) is exactly [`compose_with_mode`].
#[allow(clippy::too_many_arguments)] // the sharded variant of an 8-parameter entry point
pub fn compose_with_mode_in<M: SetupMode, R: Rng + ?Sized>(
    system: &mut StreamSystem,
    board: &GlobalStateBoard,
    request: &Request,
    now: SimTime,
    config: &ProbingConfig,
    mode: &mut M,
    rng: &mut R,
    mut shard: Option<&mut ShardedRuntime>,
) -> ProbingOutcome {
    let mut stats = OverheadStats::new();
    let mut setup_stats = SetupStats::default();
    let mut pending_stale: Option<Composition> = None;
    let mut session = None;
    let mut completed = 0;
    let mut qualified = 0;
    let mut attempt_now = now;
    let mut attempts: u32 = 0;
    let mut last_faulted;
    let max_attempts = if M::TWO_PHASE { mode.max_attempts() } else { 1 };
    let mut escalator = if M::TWO_PHASE {
        let base = config.probing_ratio.max(f64::MIN_POSITIVE);
        let esc = EscalationConfig {
            max_ratio: mode.escalation().max_ratio.max(base),
            ..mode.escalation()
        };
        Some(AlphaEscalator::new(base, esc))
    } else {
        None
    };
    let mut ratio = config.probing_ratio;

    loop {
        attempts += 1;
        setup_stats.attempts += 1;
        // Escalation leaves the config untouched until a retry actually
        // changes the ratio, so the zero-fault path borrows the caller's
        // config directly.
        let escalated;
        let attempt_config: &ProbingConfig = if ratio == config.probing_ratio {
            config
        } else {
            escalated = ProbingConfig { probing_ratio: ratio, ..config.clone() };
            &escalated
        };
        let out = probe_attempt(
            system,
            board,
            request,
            attempt_now,
            attempt_config,
            mode,
            rng,
            &mut stats,
            &mut setup_stats,
            &mut pending_stale,
            shard.as_deref_mut(),
        );
        completed += out.completed;
        qualified += out.qualified;
        last_faulted = out.faulted;
        if out.session.is_some() {
            session = out.session;
            break;
        }
        // Retry only fault-induced failures: a request the system
        // legitimately cannot serve fails exactly as on the plain path.
        // (`faulted` is constant-false for SinglePhase, so the whole
        // retry arm folds away there.)
        if !M::TWO_PHASE || !out.faulted || attempts >= max_attempts {
            break;
        }
        setup_stats.retries += 1;
        // The failed attempt's leases stay in place across the retry:
        // the next attempt re-reserves overlapping candidates as
        // idempotent refreshes instead of fresh leases, and a
        // confirmation that may still be in flight keeps its leases
        // regardless. Everything is settled — promoted, released, or
        // orphaned — when the request concludes below.
        attempt_now += mode.backoff_delay(attempts);
        // Backoff-time reclamation sweep: recover whatever leases (ours
        // or other requests') have expired in the meantime. The sharded
        // sweep applies per-entity drops in ascending index order —
        // byte-identical to the sequential sweep.
        setup_stats.leases_reclaimed += match shard.as_deref_mut() {
            Some(rt) => rt.expire_transients(system, attempt_now) as u64,
            None => system.expire_transients(attempt_now) as u64,
        };
        if let Some(esc) = escalator.as_mut() {
            esc.record_failure();
            ratio = esc.ratio();
        }
    }

    // Stale-ack replay: a duplicate delivery of a lost confirmation
    // resurfaces after the protocol concluded. Commits are idempotent per
    // request — a request that already holds a session rejects the
    // duplicate, so residuals are never committed twice.
    if M::TWO_PHASE {
        if let Some(composition) = pending_stale.take() {
            if session.is_some() || system.has_session_for(request.id) {
                setup_stats.stale_acks_rejected += 1;
            } else {
                let assignment_len = composition.assignment.len() as u64;
                match system.commit_session(request, composition) {
                    Ok(sid) => {
                        stats.confirmation_messages += assignment_len;
                        setup_stats.stale_acks_recovered += 1;
                        session = Some(sid);
                    }
                    Err(_) => setup_stats.stale_acks_rejected += 1,
                }
            }
        }
    }

    if session.is_none() {
        if M::TWO_PHASE && last_faulted {
            setup_stats.fault_failures += 1;
        }
        if M::TWO_PHASE && setup_stats.confirms_lost > 0 {
            // A confirmation is unaccounted for: the deputy cannot tell
            // a lost confirm from a committed session whose ack was
            // lost, so releasing is unsafe — leases stay orphaned and
            // the expiry-driven reclamation sweep recovers them.
            setup_stats.leases_orphaned += system.request_lease_count(request.id) as u64;
        } else {
            system.release_request_transients(request.id);
        }
    }

    ProbingOutcome {
        session,
        stats,
        completed_probes: completed,
        qualified_compositions: qualified,
        attempts,
        setup: setup_stats,
    }
}

/// One probing round: phases 1 (lease placement via probes) and 2
/// (confirmation) with transport faults injected, no retry and no final
/// release — the caller owns both.
#[allow(clippy::too_many_arguments)]
fn probe_attempt<M: SetupMode, R: Rng + ?Sized>(
    system: &mut StreamSystem,
    board: &GlobalStateBoard,
    request: &Request,
    now: SimTime,
    config: &ProbingConfig,
    mode: &mut M,
    rng: &mut R,
    stats: &mut OverheadStats,
    setup_stats: &mut SetupStats,
    pending_stale: &mut Option<Composition>,
    mut shard: Option<&mut ShardedRuntime>,
) -> AttemptOutcome {
    let mut faulted = false;
    let expiry = now + config.transient_timeout;
    let order = request.graph.topological_order();

    // Step 1: the deputy spawns the initial probe.
    let mut frontier = vec![crate::probe::Probe::initial(&request.graph)];

    // Step 2: distributed hop-by-hop probe processing.
    //
    // The probing ratio bounds the candidates probed **per function**:
    // "if there are ten candidate components for the function F_i and the
    // probing ratio α = 0.3, then we can probe 0.3 × 10 = 3 candidate
    // components" (§3.4). Every live probe proposes ranked next-hop
    // candidates; the quota of ⌈α·k⌉ *distinct* candidates is then filled
    // best-proposal-first (one probe per candidate), so the set of live
    // probes never exceeds the per-function quota. This is what makes the
    // per-hop selection decision matter: a wasted pick cannot be papered
    // over by exponential probe fan-out.
    // Scratch buffers hoisted out of the per-vertex loop: probing a
    // figure-scale workload runs this loop thousands of times, and the
    // per-hop vectors/sets below otherwise reallocate on every vertex.
    let mut proposals: Vec<(usize, usize, crate::selection::CandidatePlan)> = Vec::new();
    // Predecessor arena: all probes' `(edge, component, acc)` triples for
    // the current vertex live contiguously in `pred_buf`; `pred_ranges`
    // maps probe index → its slice. Hop contexts borrow from the arena, so
    // advancing a vertex allocates nothing per probe.
    let mut pred_buf: Vec<(usize, ComponentId, Qos)> = Vec::new();
    let mut pred_ranges: Vec<(usize, usize)> = Vec::new();
    let mut probed: std::collections::HashSet<ComponentId> = std::collections::HashSet::new();
    let mut next_frontier: Vec<crate::probe::Probe> = Vec::new();
    let mut scratch = SelectionScratch::default();

    for &vertex in &order {
        let function = request.graph.function(vertex);
        let k = system.candidates(function).len();
        let quota = match config.quota_override {
            Some(budget) => budget.clamp(usize::from(k > 0), k.max(1)),
            None => crate::selection::probe_quota(k, config.probing_ratio),
        }
        .min(config.max_live_probes);

        // Every live probe proposes its ranked candidate plans. First
        // gather all probes' assigned predecessors — (edge index,
        // component, acc) — into the arena, then run selection borrowing
        // slices of it.
        proposals.clear();
        pred_buf.clear();
        pred_ranges.clear();
        for probe in &frontier {
            let start = pred_buf.len();
            for (e, &(u, v)) in request.graph.edges().iter().enumerate() {
                if v == vertex {
                    debug_assert!(probe.assignment[u].is_some(), "topological order violated");
                    pred_buf.push((
                        e,
                        probe.assignment[u].expect("predecessor assigned in topo order"),
                        probe.accumulated[u].expect("accumulated set with assignment"),
                    ));
                }
            }
            pred_ranges.push((start, pred_buf.len()));
        }
        // Ranked selection is RNG-free, so the whole frontier's candidate
        // scoring can fan out across shard workers; Random selection
        // draws from the coordinator RNG and stays sequential.
        let sharded_ranked = config.hop_selection == HopSelection::Ranked
            && shard.as_ref().is_some_and(|rt| rt.shards() > 1);
        if sharded_ranked {
            let rt = shard.as_deref_mut().expect("checked above");
            crate::selection::select_frontier_sharded(
                system,
                board,
                request,
                vertex,
                &pred_buf,
                &pred_ranges,
                config.probing_ratio,
                config.risk_epsilon,
                stats,
                rt,
                &mut proposals,
            );
        } else {
            for (probe_idx, &(s, e)) in pred_ranges.iter().enumerate() {
                let ctx = HopContext { request, vertex, predecessors: &pred_buf[s..e] };
                let plans = select_candidates_with(
                    system,
                    board,
                    &ctx,
                    config.hop_selection,
                    config.probing_ratio,
                    config.risk_epsilon,
                    rng,
                    stats,
                    &mut scratch,
                );
                for (rank, plan) in plans.into_iter().enumerate() {
                    proposals.push((rank, probe_idx, plan));
                }
            }
        }
        // Fill the per-function quota best-rank-first, breaking rank ties
        // by the proposing probe's accumulated risk; at most one probe is
        // forwarded per distinct candidate.
        proposals.sort_by(|a, b| {
            a.0.cmp(&b.0).then_with(|| {
                let ra = frontier[a.1].worst_accumulated().risk_ratio(&request.qos);
                let rb = frontier[b.1].worst_accumulated().risk_ratio(&request.qos);
                ra.total_cmp(&rb)
            })
        });

        probed.clear();
        next_frontier.clear();
        for (_, probe_idx, plan) in proposals.drain(..) {
            if probed.len() >= quota {
                break;
            }
            if !probed.insert(plan.component) {
                continue; // candidate already probed for this request
            }
            let (s, e) = pred_ranges[probe_idx];
            let ctx = HopContext { request, vertex, predecessors: &pred_buf[s..e] };
            let probe = &frontier[probe_idx];

            // Spawn and forward the probe (one hop message).
            stats.probes_spawned += 1;
            stats.probe_messages += 1;
            if let Some(rt) = shard.as_deref_mut() {
                // Classify the hop message by shard ownership: from the
                // proposing probe's current node (the deputy spawn for the
                // source vertex counts as local) to the candidate's node.
                let from = ctx
                    .predecessors
                    .last()
                    .map_or(plan.component.node, |&(_, pred, _)| pred.node);
                rt.record_probe(from, plan.component.node);
            }

            // --- transport: the hop message may be dropped or delayed.
            // Disabled fault classes consume no randomness, so with all
            // rates at zero this block is byte-identical to not existing;
            // for SinglePhase the whole block folds away at compile time.
            let mut transit_delay = probe.delay;
            if M::TWO_PHASE {
                if mode.probe_dropped() {
                    setup_stats.probes_lost += 1;
                    faulted = true;
                    continue;
                }
                let d = mode.probe_delay();
                if d > SimDuration::ZERO {
                    setup_stats.probes_delayed += 1;
                    transit_delay += d;
                    if transit_delay >= config.transient_timeout {
                        // The probe limps in after the leases it placed
                        // upstream have expired: stale, discard.
                        setup_stats.stale_probes_discarded += 1;
                        faulted = true;
                        continue;
                    }
                }
            }

            // --- per-hop processing at the candidate's node, against
            // --- precise local state ---
            let cand_qos = system.effective_component_qos(plan.component);
            let acc = arrival_accumulated(&plan, &ctx, cand_qos);
            let demand = request.vertex_demand(system.registry(), vertex);
            let avail = system.node_available(plan.component.node);
            let link_avail = plan
                .incoming
                .iter()
                .fold(f64::INFINITY, |m, (_, p)| m.min(system.virtual_path_available(p)));
            // Eqs. 6–8 with precise values (candidate QoS and link QoS
            // already folded into `acc`, so pass zeros for those).
            if is_unqualified(
                acc,
                Qos::ZERO,
                Qos::ZERO,
                &request.qos,
                &avail,
                &demand,
                link_avail,
                request.bandwidth_kbps,
            ) {
                stats.probes_dropped += 1;
                continue;
            }
            // Transient resource allocation (idempotent per
            // request+component; footnote 7).
            if !system.reserve_component_transient(request.id, plan.component, demand, expiry) {
                stats.probes_dropped += 1;
                continue;
            }
            let mut link_ok = true;
            for (edge, path) in &plan.incoming {
                if !path.is_colocated()
                    && !system.reserve_path_transient(request.id, *edge, path, request.bandwidth_kbps, expiry)
                {
                    link_ok = false;
                    break;
                }
            }
            if !link_ok {
                stats.probes_dropped += 1;
                continue;
            }
            let mut child = probe.extend(vertex, plan.component, &plan.incoming, acc);
            child.delay = transit_delay;
            next_frontier.push(child);
        }
        std::mem::swap(&mut frontier, &mut next_frontier);
        if frontier.is_empty() {
            break;
        }
    }

    // Step 3: completed probes return to the deputy.
    let mut compositions: Vec<Composition> = frontier
        .into_iter()
        .filter(|p| p.is_complete())
        .filter_map(|p| p.into_composition())
        .collect();
    stats.probes_returned += compositions.len() as u64;
    let completed = compositions.len();

    // Qualification (Eqs. 2–5) is re-validated inside the commit; here we
    // order candidates per the final-selection policy and report how many
    // completed probes look qualified. Resource/bandwidth rejections are
    // counted as qualified at this stage because the request's own
    // transient holds still depress availability — the commit path
    // releases them before re-checking.
    // Qualification and φ are pure reads of system state, so with a
    // multi-shard runtime both fan out over contiguous composition
    // chunks; the merge keeps the original order, making the counts and
    // the sort below byte-identical to the sequential loop. The random
    // final pick still draws from the coordinator RNG.
    let qualify_one = |system: &StreamSystem, c: &Composition| {
        matches!(
            system.qualify(request, c),
            Ok(())
                | Err(AdmissionError::InsufficientResources { .. })
                | Err(AdmissionError::InsufficientBandwidth { .. })
        )
    };
    let qualified;
    let mut phi: Vec<f64> = Vec::new();
    let want_phi = config.final_selection == FinalSelection::MinCongestion;
    match shard.as_deref_mut() {
        Some(rt) if rt.shards() > 1 && compositions.len() > 1 => {
            let map = acp_simcore::ShardMap::new(compositions.len(), rt.shards());
            let comps: &[Composition] = &compositions;
            let sys: &StreamSystem = system;
            let verdicts: Vec<Vec<(bool, f64)>> = rt.scatter(|s| {
                map.range(s)
                    .map(|i| {
                        let c = &comps[i];
                        let q = qualify_one(sys, c);
                        let k = if want_phi { congestion_aggregation(sys, request, c) } else { 0.0 };
                        (q, k)
                    })
                    .collect()
            });
            let mut q_count = 0;
            for (q, k) in verdicts.into_iter().flatten() {
                q_count += usize::from(q);
                phi.push(k);
            }
            qualified = q_count;
        }
        _ => {
            qualified = compositions.iter().filter(|c| qualify_one(system, c)).count();
            if want_phi {
                phi.extend(compositions.iter().map(|c| congestion_aggregation(system, request, c)));
            }
        }
    }

    match config.final_selection {
        FinalSelection::MinCongestion => {
            let mut keyed: Vec<(f64, Composition)> =
                phi.into_iter().zip(compositions).collect();
            keyed.sort_by(|a, b| a.0.total_cmp(&b.0));
            compositions = keyed.into_iter().map(|(_, c)| c).collect();
        }
        FinalSelection::Random => {
            use rand::seq::SliceRandom;
            compositions.shuffle(rng);
        }
    }

    // Step 4 (phase 2): session setup — first composition whose
    // confirmation lands and commits wins. The first commit attempt
    // releases the request's transient holds (confirmation supersedes
    // reservation).
    let mut session = None;
    for composition in compositions {
        let assignment_len = composition.assignment.len() as u64;
        let confirm_nodes: Option<Vec<acp_topology::OverlayNodeId>> = shard
            .is_some()
            .then(|| composition.assignment.iter().map(|c| c.node).collect());
        if M::TWO_PHASE && mode.confirm_lost() {
            setup_stats.confirms_lost += 1;
            // The confirmation vanished in transit; the deputy times
            // out waiting for the ack and gives this attempt up. The
            // winner's leases stay orphaned. With probability
            // `stale_ack` the message was merely trapped and
            // resurfaces later as a duplicate delivery.
            if mode.stale_ack_resurfaces() {
                *pending_stale = Some(composition);
            }
            faulted = true;
            break;
        }
        match system.commit_session(request, composition) {
            Ok(sid) => {
                stats.confirmation_messages += assignment_len;
                // Confirmations fan out from the deputy (the winner's
                // first component's node) to every assigned node;
                // classify each by shard ownership.
                if let (Some(rt), Some(nodes)) = (shard.as_deref_mut(), confirm_nodes) {
                    if let Some(&from) = nodes.first() {
                        for &to in &nodes {
                            rt.record_confirm(from, to);
                        }
                    }
                }
                session = Some(sid);
                break;
            }
            Err(_) => continue,
        }
    }

    AttemptOutcome { session, completed, qualified, faulted }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acp_state::GlobalStateConfig;
    use acp_topology::{InetConfig, Overlay, OverlayConfig, OverlayNodeId};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn build(seed: u64, nodes: usize) -> (StreamSystem, GlobalStateBoard) {
        let mut rng = StdRng::seed_from_u64(seed);
        let ip = InetConfig { nodes: 250, ..InetConfig::default() }.generate(&mut rng);
        let overlay = Overlay::build(&ip, &OverlayConfig { stream_nodes: nodes, neighbors: 4 }, &mut rng);
        let sys = StreamSystem::generate(
            overlay,
            FunctionRegistry::standard(),
            &SystemConfig::default(),
            &mut rng,
        );
        let board = GlobalStateBoard::new(&sys, GlobalStateConfig::default());
        (sys, board)
    }

    fn path_request(sys: &StreamSystem, id: u64, len: usize) -> Request {
        let fns: Vec<FunctionId> =
            sys.registry().ids().filter(|&f| sys.candidates(f).len() >= 2).take(len).collect();
        assert_eq!(fns.len(), len, "not enough populated functions");
        Request {
            id: RequestId(id),
            graph: FunctionGraph::path(fns),
            qos: QosRequirement::unconstrained(),
            base_resources: ResourceVector::new(0.5, 2.0),
            bandwidth_kbps: 5.0,
            stream_rate_kbps: 100.0,
            constraints: PlacementConstraints::none(),
            tenant: None,
        }
    }

    #[test]
    fn composes_simple_path_request() {
        let (mut sys, board) = build(1, 40);
        let req = path_request(&sys, 1, 3);
        let mut rng = StdRng::seed_from_u64(1);
        let out = probe_compose(&mut sys, &board, &req, SimTime::ZERO, &ProbingConfig::default(), &mut rng);
        assert!(out.session.is_some(), "loose request must compose");
        assert!(out.completed_probes >= 1);
        assert!(out.stats.probe_messages > 0);
        assert_eq!(sys.session_count(), 1);
        // No transient residue on any node.
        for i in 0..sys.node_count() {
            assert_eq!(sys.node(OverlayNodeId(i as u32)).transient_count(), 0);
        }
    }

    #[test]
    fn composes_dag_request() {
        let (mut sys, board) = build(2, 40);
        let fns: Vec<FunctionId> =
            sys.registry().ids().filter(|&f| sys.candidates(f).len() >= 2).take(5).collect();
        let graph = FunctionGraph::split_merge(
            vec![fns[0]],
            vec![fns[1]],
            vec![fns[2]],
            fns[3],
            vec![fns[4]],
        );
        let req = Request {
            id: RequestId(2),
            graph,
            qos: QosRequirement::unconstrained(),
            base_resources: ResourceVector::new(0.3, 1.0),
            bandwidth_kbps: 2.0,
            stream_rate_kbps: 64.0,
            constraints: PlacementConstraints::none(),
            tenant: None,
        };
        let mut rng = StdRng::seed_from_u64(2);
        let out = probe_compose(&mut sys, &board, &req, SimTime::ZERO, &ProbingConfig::default(), &mut rng);
        assert!(out.session.is_some(), "DAG request must compose");
        let session = sys.sessions().next().unwrap();
        assert!(session.composition.is_shape_valid(&req.graph));
    }

    #[test]
    fn committed_composition_is_qualified() {
        let (mut sys, board) = build(3, 40);
        let req = path_request(&sys, 3, 4);
        let mut rng = StdRng::seed_from_u64(3);
        let out = probe_compose(&mut sys, &board, &req, SimTime::ZERO, &ProbingConfig::default(), &mut rng);
        let sid = out.session.expect("composed");
        let composition = sys.session(sid).unwrap().composition.clone();
        // After commit the composition occupies its own resources, so
        // re-qualifying the same composition may fail on resources — but
        // shape, function and rate constraints must hold.
        assert!(composition.is_shape_valid(&req.graph));
        for v in req.graph.vertices() {
            assert_eq!(sys.component(composition.assignment[v]).function, req.graph.function(v));
        }
    }

    #[test]
    fn impossible_qos_fails_and_leaves_no_residue() {
        let (mut sys, board) = build(4, 40);
        let mut req = path_request(&sys, 4, 3);
        req.qos = QosRequirement::new(SimDuration::from_micros(1), LossRate::ZERO);
        let mut rng = StdRng::seed_from_u64(4);
        let out = probe_compose(&mut sys, &board, &req, SimTime::ZERO, &ProbingConfig::default(), &mut rng);
        assert!(out.session.is_none());
        assert_eq!(sys.session_count(), 0);
        for i in 0..sys.node_count() {
            assert_eq!(sys.node(OverlayNodeId(i as u32)).transient_count(), 0, "transient residue");
        }
    }

    #[test]
    fn higher_ratio_probes_more() {
        let (mut sys, board) = build(5, 40);
        let req = path_request(&sys, 5, 3);
        let mut rng = StdRng::seed_from_u64(5);
        let lo_cfg = ProbingConfig { probing_ratio: 0.1, ..ProbingConfig::default() };
        let lo = probe_compose(&mut sys.clone(), &board, &req, SimTime::ZERO, &lo_cfg, &mut rng);
        let hi_cfg = ProbingConfig { probing_ratio: 0.9, ..ProbingConfig::default() };
        let hi = probe_compose(&mut sys, &board, &req, SimTime::ZERO, &hi_cfg, &mut rng);
        assert!(
            hi.stats.probe_messages > lo.stats.probe_messages,
            "α=0.9 ({}) should outprobe α=0.1 ({})",
            hi.stats.probe_messages,
            lo.stats.probe_messages
        );
    }

    #[test]
    fn probe_budget_caps_growth() {
        let (mut sys, board) = build(6, 60);
        let req = path_request(&sys, 6, 5);
        let mut rng = StdRng::seed_from_u64(6);
        let cfg = ProbingConfig { probing_ratio: 1.0, max_live_probes: 8, ..ProbingConfig::default() };
        let out = probe_compose(&mut sys, &board, &req, SimTime::ZERO, &cfg, &mut rng);
        assert!(out.completed_probes <= 8);
    }

    #[test]
    fn random_final_selection_still_commits_valid_session() {
        let (mut sys, board) = build(7, 40);
        let req = path_request(&sys, 7, 3);
        let mut rng = StdRng::seed_from_u64(7);
        let cfg = ProbingConfig { final_selection: FinalSelection::Random, ..ProbingConfig::default() };
        let out = probe_compose(&mut sys, &board, &req, SimTime::ZERO, &cfg, &mut rng);
        assert!(out.session.is_some());
    }

    #[test]
    fn inert_two_phase_is_byte_identical_to_plain() {
        let (sys0, board) = build(21, 40);
        let req = path_request(&sys0, 21, 3);
        let cfg = ProbingConfig::default();
        let mut sys_a = sys0.clone();
        let mut rng_a = StdRng::seed_from_u64(9);
        let plain = probe_compose(&mut sys_a, &board, &req, SimTime::ZERO, &cfg, &mut rng_a);
        let mut sys_b = sys0.clone();
        let mut rng_b = StdRng::seed_from_u64(9);
        let mut setup = SetupState::new(77, SetupConfig::default());
        assert!(setup.is_inert());
        let two = probe_compose_with(
            &mut sys_b,
            &board,
            &req,
            SimTime::ZERO,
            &cfg,
            Some(&mut setup),
            &mut rng_b,
        );
        assert_eq!(plain.session, two.session);
        assert_eq!(plain.stats, two.stats);
        assert_eq!(plain.completed_probes, two.completed_probes);
        assert_eq!(plain.qualified_compositions, two.qualified_compositions);
        assert_eq!(two.attempts, 1);
        assert_eq!(two.setup, SetupStats { attempts: 1, ..SetupStats::default() });
        assert_eq!(sys_a.lease_stats(), sys_b.lease_stats());
        // The selection RNG advanced identically on both paths.
        assert_eq!(rng_a.gen::<u64>(), rng_b.gen::<u64>());
    }

    #[test]
    fn reliable_transport_two_phase_is_byte_identical_to_single_phase() {
        // The other monomorphization axis: TwoPhase over a no-op
        // transport (rather than an inert injector) must also match the
        // SinglePhase instantiation byte for byte.
        let (sys0, board) = build(24, 40);
        let req = path_request(&sys0, 24, 3);
        let cfg = ProbingConfig::default();
        let mut sys_a = sys0.clone();
        let mut rng_a = StdRng::seed_from_u64(13);
        let plain = compose_with_mode(
            &mut sys_a,
            &board,
            &req,
            SimTime::ZERO,
            &cfg,
            &mut SinglePhase,
            &mut rng_a,
        );
        let mut sys_b = sys0.clone();
        let mut rng_b = StdRng::seed_from_u64(13);
        let mut mode =
            TwoPhase::with_transport(55, SetupConfig::default(), acp_simcore::ReliableTransport);
        let two = compose_with_mode(
            &mut sys_b,
            &board,
            &req,
            SimTime::ZERO,
            &cfg,
            &mut mode,
            &mut rng_b,
        );
        assert_eq!(plain.session, two.session);
        assert_eq!(plain.stats, two.stats);
        assert_eq!(plain.completed_probes, two.completed_probes);
        assert_eq!(two.attempts, 1);
        assert_eq!(sys_a.lease_stats(), sys_b.lease_stats());
        assert_eq!(rng_a.gen::<u64>(), rng_b.gen::<u64>());
    }

    #[test]
    fn probe_loss_retries_with_escalation_and_recovers() {
        let (mut sys, board) = build(22, 50);
        let cfg = ProbingConfig::default();
        let setup_cfg = SetupConfig {
            faults: MessageFaultConfig { probe_drop: 0.3, ..MessageFaultConfig::default() },
            ..SetupConfig::default()
        };
        let mut setup = SetupState::new(5, setup_cfg);
        let mut rng = StdRng::seed_from_u64(5);
        let mut retried = 0u64;
        let mut composed = 0u64;
        for id in 0..20u64 {
            // Arrivals a lease-lifetime apart, with the arrival-time
            // reclamation sweep the scenario driver also runs — earlier
            // requests' orphans never depress availability here.
            let now = SimTime::ZERO + SimDuration::from_secs(40 * id);
            sys.expire_transients(now);
            let req = path_request(&sys, 100 + id, 3);
            let out =
                probe_compose_with(&mut sys, &board, &req, now, &cfg, Some(&mut setup), &mut rng);
            retried += out.setup.retries;
            if let Some(sid) = out.session {
                composed += 1;
                sys.close_session(sid);
            }
        }
        assert!(retried > 0, "30% probe loss must trigger retries");
        assert!(
            composed >= 18,
            "retry with escalation should recover nearly all requests, got {composed}/20"
        );
    }

    #[test]
    fn lost_confirm_orphans_leases_until_reclamation_sweep() {
        let (mut sys, board) = build(23, 40);
        let req = path_request(&sys, 23, 3);
        let cfg = ProbingConfig::default();
        let setup_cfg = SetupConfig {
            faults: MessageFaultConfig { confirm_loss: 1.0, ..MessageFaultConfig::default() },
            max_attempts: 1,
            ..SetupConfig::default()
        };
        let mut setup = SetupState::new(3, setup_cfg);
        let mut rng = StdRng::seed_from_u64(3);
        let out = probe_compose_with(
            &mut sys,
            &board,
            &req,
            SimTime::ZERO,
            &cfg,
            Some(&mut setup),
            &mut rng,
        );
        assert!(out.session.is_none(), "lost confirmation cannot establish a session");
        assert_eq!(out.setup.confirms_lost, 1);
        assert!(out.setup.leases_orphaned > 0, "winner's leases must stay orphaned");
        assert!(sys.live_lease_count() > 0, "orphans persist until the sweep");
        assert_eq!(sys.session_count(), 0);
        // The expiry-driven reclamation sweep recovers every orphan.
        let horizon = SimTime::ZERO + cfg.transient_timeout + SimDuration::from_secs(1);
        sys.expire_transients(horizon);
        assert_eq!(sys.live_lease_count(), 0, "sweep must reclaim all orphans");
        assert!(sys.lease_stats().reconciles(0));
        assert!(SystemAuditor::default().audit_at(&sys, Some(horizon)).is_clean());
    }

    #[test]
    fn stale_ack_recovers_otherwise_failed_request() {
        let (mut sys, board) = build(24, 40);
        let req = path_request(&sys, 24, 3);
        let cfg = ProbingConfig::default();
        let setup_cfg = SetupConfig {
            faults: MessageFaultConfig {
                confirm_loss: 1.0,
                stale_ack: 1.0,
                ..MessageFaultConfig::default()
            },
            max_attempts: 1,
            ..SetupConfig::default()
        };
        let mut setup = SetupState::new(4, setup_cfg);
        let mut rng = StdRng::seed_from_u64(4);
        let out = probe_compose_with(
            &mut sys,
            &board,
            &req,
            SimTime::ZERO,
            &cfg,
            Some(&mut setup),
            &mut rng,
        );
        // The trapped confirmation resurfaced and salvaged the request.
        assert_eq!(out.setup.confirms_lost, 1);
        assert_eq!(out.setup.stale_acks_recovered, 1);
        assert!(out.session.is_some());
        assert_eq!(sys.session_count(), 1);
    }

    /// Regression: a confirmation lost mid-flight must never double-commit
    /// residuals when the retry succeeds on another composition — the
    /// commit is idempotent per request, so the resurfacing stale ack is
    /// rejected.
    #[test]
    fn lost_confirm_never_double_commits_after_successful_retry() {
        let (mut sys, board) = build(25, 50);
        let cfg = ProbingConfig::default();
        let setup_cfg = SetupConfig {
            faults: MessageFaultConfig {
                confirm_loss: 0.5,
                stale_ack: 1.0,
                ..MessageFaultConfig::default()
            },
            ..SetupConfig::default()
        };
        let mut setup = SetupState::new(11, setup_cfg);
        let mut rng = StdRng::seed_from_u64(11);
        let mut exercised = false;
        for id in 0..30u64 {
            let req = path_request(&sys, 200 + id, 3);
            let out = probe_compose_with(
                &mut sys,
                &board,
                &req,
                SimTime::ZERO,
                &cfg,
                Some(&mut setup),
                &mut rng,
            );
            let sessions = sys.sessions().filter(|s| s.request == req.id).count();
            assert!(sessions <= 1, "request {id} double-committed residuals");
            if out.setup.confirms_lost > 0
                && out.session.is_some()
                && out.setup.stale_acks_rejected > 0
            {
                exercised = true;
            }
            if let Some(sid) = out.session {
                sys.close_session(sid);
            }
        }
        assert!(exercised, "no request exercised the stale-ack rejection path");
        assert!(sys.lease_stats().reconciles(sys.live_lease_count() as u64));
    }

    #[test]
    fn min_congestion_beats_random_on_phi() {
        // Statistical: over several requests the MinCongestion policy
        // should pick compositions with φ no worse on average.
        let (sys0, board) = build(8, 50);
        let mut phi_min = 0.0;
        let mut phi_rand = 0.0;
        let mut counted = 0;
        for trial in 0..10u64 {
            let req = path_request(&sys0, 100 + trial, 3);
            let mut rng_a = StdRng::seed_from_u64(trial);
            let mut rng_b = StdRng::seed_from_u64(trial);
            let mut sys_a = sys0.clone();
            let out_a = probe_compose(
                &mut sys_a,
                &board,
                &req,
                SimTime::ZERO,
                &ProbingConfig { final_selection: FinalSelection::MinCongestion, ..ProbingConfig::default() },
                &mut rng_a,
            );
            let mut sys_b = sys0.clone();
            let out_b = probe_compose(
                &mut sys_b,
                &board,
                &req,
                SimTime::ZERO,
                &ProbingConfig { final_selection: FinalSelection::Random, ..ProbingConfig::default() },
                &mut rng_b,
            );
            if let (Some(sa), Some(sb)) = (out_a.session, out_b.session) {
                let ca = sys_a.session(sa).unwrap().composition.clone();
                let cb = sys_b.session(sb).unwrap().composition.clone();
                // Evaluate both φ against the pristine system.
                let mut fresh = sys0.clone();
                fresh.release_request_transients(req.id);
                phi_min += congestion_aggregation(&fresh, &req, &ca);
                phi_rand += congestion_aggregation(&fresh, &req, &cb);
                counted += 1;
            }
        }
        assert!(counted >= 5, "most requests should compose");
        assert!(phi_min <= phi_rand + 1e-9, "min-φ {phi_min} vs random {phi_rand}");
    }
}
