//! Probing-ratio tuning (§3.4).
//!
//! ACP maintains a target composition success rate `u*(t)` with the
//! *minimal* probing ratio. The mapping α → success-rate is non-linear and
//! drifts with system conditions, so ACP profiles it on-line: when the
//! measured success rate deviates from the prediction by more than a
//! threshold δ, the tuner re-derives the mapping by **trace replay** —
//! re-running a representative recent workload at increasing probing
//! ratios (base ratio upward in fixed steps) until the success rate
//! saturates or reaches the target — and then picks the minimal ratio
//! predicted to meet the target.

/// Tuner parameters (defaults follow §3.4 and §4.2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TunerConfig {
    /// Target composition success rate `u*(t)` (Fig. 8 uses 0.90).
    pub target_success: f64,
    /// Re-profiling trigger: |measured − predicted| > δ (paper: 0.02).
    pub delta: f64,
    /// Profiling starts from this ratio (paper: 0.1).
    pub base_ratio: f64,
    /// Profiling step (paper: 0.1).
    pub step: f64,
    /// Upper bound of the probing ratio (the probing-overhead limit of
    /// footnote 9).
    pub max_ratio: f64,
    /// Saturation detection: stop profiling after the success rate
    /// improves less than this across a step, twice in a row.
    pub saturation_epsilon: f64,
}

impl Default for TunerConfig {
    fn default() -> Self {
        TunerConfig {
            target_success: 0.90,
            delta: 0.02,
            base_ratio: 0.1,
            step: 0.1,
            max_ratio: 1.0,
            saturation_epsilon: 0.005,
        }
    }
}

/// On-line profiler/controller for the probing ratio.
#[derive(Debug, Clone)]
pub struct ProbingRatioTuner {
    config: TunerConfig,
    ratio: f64,
    predicted: Option<f64>,
    profile: Vec<(f64, f64)>,
    profiling_runs: u64,
}

impl ProbingRatioTuner {
    /// Creates a tuner starting at the base ratio with no prediction (the
    /// first sample always triggers profiling).
    pub fn new(config: TunerConfig) -> Self {
        assert!(config.target_success > 0.0 && config.target_success <= 1.0);
        assert!(config.base_ratio > 0.0 && config.base_ratio <= config.max_ratio);
        assert!(config.step > 0.0);
        ProbingRatioTuner {
            ratio: config.base_ratio,
            config,
            predicted: None,
            profile: Vec::new(),
            profiling_runs: 0,
        }
    }

    /// The probing ratio currently in force.
    pub fn ratio(&self) -> f64 {
        self.ratio
    }

    /// The success rate predicted for the current ratio, if profiled.
    pub fn predicted_success(&self) -> Option<f64> {
        self.predicted
    }

    /// The most recent α → success-rate profile.
    pub fn profile(&self) -> &[(f64, f64)] {
        &self.profile
    }

    /// Number of profiling sweeps performed.
    pub fn profiling_runs(&self) -> u64 {
        self.profiling_runs
    }

    /// The tuner configuration.
    pub fn config(&self) -> &TunerConfig {
        &self.config
    }

    /// Feeds one sampling-period measurement. `measured` is the success
    /// rate over the period (`None` when no requests arrived — ignored).
    /// `replay` evaluates a candidate ratio against a representative
    /// recent workload (trace replay) and returns the achieved success
    /// rate; it is only invoked when re-profiling triggers.
    ///
    /// Returns `true` when a re-profiling sweep ran.
    pub fn observe<F>(&mut self, measured: Option<f64>, mut replay: F) -> bool
    where
        F: FnMut(f64) -> f64,
    {
        let Some(measured) = measured else {
            return false;
        };
        let needs_profiling = match self.predicted {
            None => true,
            Some(predicted) => (measured - predicted).abs() > self.config.delta,
        };
        if !needs_profiling {
            return false;
        }
        self.reprofile(&mut replay);
        true
    }

    /// Runs a profiling sweep and re-selects the minimal ratio meeting the
    /// target (or the best-achieving ratio if the target is unreachable).
    pub fn reprofile<F>(&mut self, replay: &mut F)
    where
        F: FnMut(f64) -> f64,
    {
        self.profiling_runs += 1;
        self.profile.clear();
        let mut alpha = self.config.base_ratio;
        let mut flat_steps = 0;
        let mut prev: Option<f64> = None;
        loop {
            let success = replay(alpha).clamp(0.0, 1.0);
            self.profile.push((alpha, success));
            // "The profiling process ... gradually increases the probing
            // ratio ... until the success rate hits the saturation value."
            if success >= self.config.target_success {
                break;
            }
            if let Some(p) = prev {
                if success - p < self.config.saturation_epsilon {
                    flat_steps += 1;
                    if flat_steps >= 2 {
                        break; // saturated below target
                    }
                } else {
                    flat_steps = 0;
                }
            }
            prev = Some(success);
            // Step, keeping within the overhead limit.
            let next = alpha + self.config.step;
            if next > self.config.max_ratio + 1e-9 {
                break;
            }
            alpha = next.min(self.config.max_ratio);
        }
        // Minimal ratio predicted to meet the target, else argmax.
        let chosen = self
            .profile
            .iter()
            .find(|&&(_, s)| s >= self.config.target_success)
            .or_else(|| {
                self.profile.iter().max_by(|a, b| {
                    a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal)
                })
            })
            .copied()
            .expect("profile contains at least the base ratio");
        self.ratio = chosen.0;
        self.predicted = Some(chosen.1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A synthetic α→success mapping: saturating curve with a knee.
    fn curve(knee: f64, ceiling: f64) -> impl Fn(f64) -> f64 {
        move |alpha: f64| (ceiling * (alpha / knee)).min(ceiling)
    }

    #[test]
    fn first_sample_triggers_profiling() {
        let mut tuner = ProbingRatioTuner::new(TunerConfig::default());
        let ran = tuner.observe(Some(0.5), curve(0.3, 1.0));
        assert!(ran);
        assert!(tuner.predicted_success().is_some());
        assert_eq!(tuner.profiling_runs(), 1);
    }

    #[test]
    fn picks_minimal_ratio_meeting_target() {
        let mut tuner = ProbingRatioTuner::new(TunerConfig::default());
        // success = min(1.0, α/0.3): target 0.9 reached at α = 0.27, the
        // 0.1-step grid reaches it at 0.3.
        tuner.observe(Some(0.1), curve(0.3, 1.0));
        assert!((tuner.ratio() - 0.3).abs() < 1e-9, "ratio {}", tuner.ratio());
    }

    #[test]
    fn stable_prediction_skips_profiling() {
        let mut tuner = ProbingRatioTuner::new(TunerConfig::default());
        tuner.observe(Some(0.1), curve(0.3, 1.0));
        let runs = tuner.profiling_runs();
        let predicted = tuner.predicted_success().unwrap();
        // measured within δ of predicted → no sweep
        let ran = tuner.observe(Some(predicted + 0.01), |_| panic!("must not replay"));
        assert!(!ran);
        assert_eq!(tuner.profiling_runs(), runs);
    }

    #[test]
    fn drift_triggers_reprofiling_and_raises_ratio() {
        let mut tuner = ProbingRatioTuner::new(TunerConfig::default());
        tuner.observe(Some(0.1), curve(0.3, 1.0));
        let before = tuner.ratio();
        // Workload surge: the same ratio now achieves much less.
        let ran = tuner.observe(Some(0.55), curve(0.6, 1.0));
        assert!(ran);
        assert!(tuner.ratio() > before, "{} should exceed {before}", tuner.ratio());
    }

    #[test]
    fn load_drop_lowers_ratio() {
        let mut tuner = ProbingRatioTuner::new(TunerConfig::default());
        tuner.observe(Some(0.1), curve(0.6, 1.0));
        let high = tuner.ratio();
        // Measured rate drifts below the prediction by more than δ
        // (conditions changed) → re-profile against the lighter workload.
        let ran = tuner.observe(Some(0.80), curve(0.2, 1.0));
        assert!(ran);
        assert!(tuner.ratio() < high);
    }

    #[test]
    fn unreachable_target_stops_at_saturation() {
        let cfg = TunerConfig { target_success: 0.95, ..TunerConfig::default() };
        let mut tuner = ProbingRatioTuner::new(cfg);
        // Ceiling 0.7 regardless of α — profiling must terminate and pick
        // the best available ratio.
        tuner.observe(Some(0.1), curve(0.2, 0.7));
        assert!(tuner.ratio() <= 1.0);
        let best = tuner.profile().iter().map(|&(_, s)| s).fold(0.0, f64::max);
        assert!((tuner.predicted_success().unwrap() - best).abs() < 1e-9);
        // Saturation cut the sweep short of max_ratio.
        assert!(tuner.profile().len() < 10);
    }

    #[test]
    fn profile_is_recorded_in_order() {
        let mut tuner = ProbingRatioTuner::new(TunerConfig::default());
        tuner.observe(Some(0.0), curve(0.5, 1.0));
        let profile = tuner.profile();
        assert!(!profile.is_empty());
        for pair in profile.windows(2) {
            assert!(pair[0].0 < pair[1].0, "ratios increase");
        }
        assert!((profile[0].0 - 0.1).abs() < 1e-9, "starts at base ratio");
    }

    #[test]
    #[should_panic]
    fn rejects_invalid_config() {
        let _ = ProbingRatioTuner::new(TunerConfig { base_ratio: 0.0, ..TunerConfig::default() });
    }
}
