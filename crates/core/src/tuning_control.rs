//! Control-theoretic probing-ratio tuning.
//!
//! The paper's conclusion proposes "applying control theory to tune the
//! probing ratio more precisely" as future work (§6, item 1). This module
//! implements that extension: a discrete-time PI controller that treats
//! the composition success rate as the process variable and the probing
//! ratio as the actuator.
//!
//! Compared to the profiling tuner ([`crate::tuning::ProbingRatioTuner`]),
//! the controller needs **no trace replay** — it reacts only to the
//! measured success rate — at the cost of slower convergence after abrupt
//! workload shifts. The `ablation` benchmark binary compares both.

/// PI controller gains and actuator limits.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PiControllerConfig {
    /// Success-rate setpoint `u*(t)`.
    pub target_success: f64,
    /// Proportional gain applied to the current error.
    pub kp: f64,
    /// Integral gain applied to the accumulated error.
    pub ki: f64,
    /// Actuator lower bound.
    pub min_ratio: f64,
    /// Actuator upper bound (the probing-overhead limit of footnote 9).
    pub max_ratio: f64,
    /// Starting probing ratio.
    pub initial_ratio: f64,
    /// Anti-windup clamp on the absolute integral term.
    pub integral_limit: f64,
}

impl Default for PiControllerConfig {
    fn default() -> Self {
        PiControllerConfig {
            target_success: 0.90,
            kp: 0.8,
            ki: 0.25,
            min_ratio: 0.05,
            max_ratio: 1.0,
            initial_ratio: 0.1,
            integral_limit: 0.4,
        }
    }
}

/// A discrete PI controller over the probing ratio.
///
/// # Example
///
/// ```
/// use acp_core::tuning_control::{PiControllerConfig, PiRatioController};
///
/// let mut ctrl = PiRatioController::new(PiControllerConfig::default());
/// // Success below target → the controller raises the ratio.
/// let before = ctrl.ratio();
/// ctrl.observe(Some(0.5));
/// assert!(ctrl.ratio() > before);
/// ```
#[derive(Debug, Clone)]
pub struct PiRatioController {
    config: PiControllerConfig,
    ratio: f64,
    integral: f64,
    updates: u64,
}

impl PiRatioController {
    /// Creates a controller at the configured initial ratio.
    ///
    /// # Panics
    ///
    /// Panics on non-positive gains/limits or an initial ratio outside
    /// the actuator bounds.
    pub fn new(config: PiControllerConfig) -> Self {
        assert!(config.target_success > 0.0 && config.target_success <= 1.0);
        assert!(config.kp >= 0.0 && config.ki >= 0.0, "gains must be non-negative");
        assert!(config.kp > 0.0 || config.ki > 0.0, "at least one gain must be positive");
        assert!(
            config.min_ratio > 0.0 && config.min_ratio <= config.max_ratio && config.max_ratio <= 1.0,
            "actuator bounds must satisfy 0 < min <= max <= 1"
        );
        assert!(
            (config.min_ratio..=config.max_ratio).contains(&config.initial_ratio),
            "initial ratio outside actuator bounds"
        );
        PiRatioController { config, ratio: config.initial_ratio, integral: 0.0, updates: 0 }
    }

    /// The probing ratio currently in force.
    pub fn ratio(&self) -> f64 {
        self.ratio
    }

    /// Number of control updates applied.
    pub fn updates(&self) -> u64 {
        self.updates
    }

    /// The controller configuration.
    pub fn config(&self) -> &PiControllerConfig {
        &self.config
    }

    /// Feeds one sampling-period measurement and updates the actuator.
    /// `None` (no requests in the period) leaves the state untouched.
    /// Returns the (possibly new) ratio.
    pub fn observe(&mut self, measured: Option<f64>) -> f64 {
        let Some(measured) = measured else {
            return self.ratio;
        };
        let error = self.config.target_success - measured.clamp(0.0, 1.0);
        // Anti-windup, part 1: when the error flips sign, bleed half the
        // accumulated integral so the controller releases a saturated
        // actuator promptly instead of riding the wound-up term.
        if error * self.integral < 0.0 {
            self.integral *= 0.5;
        }
        // Anti-windup, part 2 (conditional integration): freeze the
        // integral while the actuator is saturated in the error's
        // direction.
        let saturated_high = self.ratio >= self.config.max_ratio && error > 0.0;
        let saturated_low = self.ratio <= self.config.min_ratio && error < 0.0;
        if !saturated_high && !saturated_low {
            self.integral = (self.integral + error)
                .clamp(-self.config.integral_limit, self.config.integral_limit);
        }
        let delta = self.config.kp * error + self.config.ki * self.integral;
        self.ratio = (self.ratio + delta).clamp(self.config.min_ratio, self.config.max_ratio);
        self.updates += 1;
        self.ratio
    }

    /// Resets the integral state (e.g. on a known workload change).
    pub fn reset(&mut self) {
        self.integral = 0.0;
    }
}

/// Escalation policy for the two-phase setup retry loop: how aggressively
/// the probing ratio grows on consecutive failed attempts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EscalationConfig {
    /// Multiplicative ratio bump per consecutive failure.
    pub factor: f64,
    /// Actuator upper bound (the probing-overhead limit of footnote 9).
    pub max_ratio: f64,
}

impl Default for EscalationConfig {
    fn default() -> Self {
        EscalationConfig { factor: 1.6, max_ratio: 1.0 }
    }
}

/// Open-loop probing-ratio escalation for retries within one request.
///
/// Where [`PiRatioController`] tunes α across sampling periods from the
/// measured success rate, the escalator reacts *within* a single request's
/// setup: each failed attempt widens the next attempt's probe fan-out
/// multiplicatively, so a request whose probes were unlucky with a lossy
/// transport quickly buys itself redundancy instead of replaying the same
/// thin probe tree.
///
/// # Example
///
/// ```
/// use acp_core::tuning_control::{AlphaEscalator, EscalationConfig};
///
/// let mut esc = AlphaEscalator::new(0.3, EscalationConfig::default());
/// assert_eq!(esc.ratio(), 0.3);
/// esc.record_failure();
/// assert!(esc.ratio() > 0.3);
/// esc.record_success();
/// assert_eq!(esc.ratio(), 0.3);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct AlphaEscalator {
    config: EscalationConfig,
    base: f64,
    consecutive_failures: u32,
}

impl AlphaEscalator {
    /// Creates an escalator starting from `base` (the configured probing
    /// ratio).
    ///
    /// # Panics
    ///
    /// Panics on a non-positive base, a factor below 1, or a cap below
    /// the base.
    pub fn new(base: f64, config: EscalationConfig) -> Self {
        assert!(base > 0.0, "base ratio must be positive");
        assert!(config.factor >= 1.0, "escalation factor must be >= 1");
        assert!(config.max_ratio >= base, "cap must not undercut the base ratio");
        AlphaEscalator { config, base, consecutive_failures: 0 }
    }

    /// The probing ratio for the next attempt:
    /// `min(base · factor^failures, max_ratio)`.
    pub fn ratio(&self) -> f64 {
        (self.base * self.config.factor.powi(self.consecutive_failures as i32))
            .min(self.config.max_ratio)
    }

    /// Consecutive failures observed since the last success.
    pub fn consecutive_failures(&self) -> u32 {
        self.consecutive_failures
    }

    /// Records a failed attempt, widening the next attempt's fan-out.
    pub fn record_failure(&mut self) {
        self.consecutive_failures = self.consecutive_failures.saturating_add(1);
    }

    /// Records a success, resetting to the base ratio.
    pub fn record_success(&mut self) {
        self.consecutive_failures = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A synthetic plant: success = min(1, ratio/knee), optionally noisy.
    fn plant(knee: f64) -> impl Fn(f64) -> f64 {
        move |ratio: f64| (ratio / knee).min(1.0)
    }

    fn run_steps(ctrl: &mut PiRatioController, plant: impl Fn(f64) -> f64, steps: usize) -> f64 {
        let mut measured = plant(ctrl.ratio());
        for _ in 0..steps {
            ctrl.observe(Some(measured));
            measured = plant(ctrl.ratio());
        }
        measured
    }

    #[test]
    fn raises_ratio_when_below_target() {
        let mut ctrl = PiRatioController::new(PiControllerConfig::default());
        let before = ctrl.ratio();
        ctrl.observe(Some(0.4));
        assert!(ctrl.ratio() > before);
    }

    #[test]
    fn lowers_ratio_when_above_target() {
        let mut ctrl = PiRatioController::new(PiControllerConfig {
            initial_ratio: 0.8,
            ..PiControllerConfig::default()
        });
        ctrl.observe(Some(1.0));
        assert!(ctrl.ratio() < 0.8);
    }

    #[test]
    fn converges_to_setpoint_on_linear_plant() {
        let mut ctrl = PiRatioController::new(PiControllerConfig::default());
        let final_success = run_steps(&mut ctrl, plant(0.5), 60);
        assert!((final_success - 0.9).abs() < 0.05, "converged to {final_success}");
        // steady-state ratio near knee * target = 0.45
        assert!((ctrl.ratio() - 0.45).abs() < 0.1, "ratio {}", ctrl.ratio());
    }

    #[test]
    fn tracks_workload_shift() {
        let mut ctrl = PiRatioController::new(PiControllerConfig::default());
        run_steps(&mut ctrl, plant(0.3), 40);
        let calm = ctrl.ratio();
        // Surge: the knee doubles (same ratio achieves half the success).
        let final_success = run_steps(&mut ctrl, plant(0.6), 60);
        assert!(ctrl.ratio() > calm, "controller must raise the ratio after a surge");
        assert!((final_success - 0.9).abs() < 0.05);
        // Relaxation: knee shrinks back.
        run_steps(&mut ctrl, plant(0.3), 60);
        assert!(ctrl.ratio() < 0.45, "controller must release probes after relaxation");
    }

    #[test]
    fn anti_windup_bounds_integral_under_unreachable_target() {
        let mut ctrl = PiRatioController::new(PiControllerConfig::default());
        // Plant can never exceed 0.6: actuator saturates at max_ratio.
        for _ in 0..100 {
            ctrl.observe(Some(0.6));
        }
        assert_eq!(ctrl.ratio(), 1.0, "saturated high");
        // Once the plant recovers, the controller must unwind quickly
        // (bounded integral), reaching below 0.5 within a few periods.
        let mut steps = 0;
        while ctrl.ratio() > 0.5 && steps < 12 {
            ctrl.observe(Some(1.0));
            steps += 1;
        }
        assert!(steps < 12, "windup: took too long to unwind");
    }

    #[test]
    fn missing_measurement_is_a_noop() {
        let mut ctrl = PiRatioController::new(PiControllerConfig::default());
        ctrl.observe(Some(0.2));
        let ratio = ctrl.ratio();
        let updates = ctrl.updates();
        ctrl.observe(None);
        assert_eq!(ctrl.ratio(), ratio);
        assert_eq!(ctrl.updates(), updates);
    }

    #[test]
    fn reset_clears_integral() {
        let mut ctrl = PiRatioController::new(PiControllerConfig::default());
        for _ in 0..10 {
            ctrl.observe(Some(0.2));
        }
        ctrl.reset();
        // After reset, a measurement exactly at target leaves the ratio
        // unchanged (pure P term is zero, integral is zero).
        let ratio = ctrl.ratio();
        ctrl.observe(Some(0.9));
        assert!((ctrl.ratio() - ratio).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "actuator bounds")]
    fn rejects_bad_initial_ratio() {
        let _ = PiRatioController::new(PiControllerConfig {
            initial_ratio: 0.01,
            ..PiControllerConfig::default()
        });
    }

    #[test]
    fn escalator_grows_geometrically_and_caps() {
        let mut esc = AlphaEscalator::new(0.2, EscalationConfig { factor: 2.0, max_ratio: 1.0 });
        assert_eq!(esc.ratio(), 0.2);
        esc.record_failure();
        assert!((esc.ratio() - 0.4).abs() < 1e-12);
        esc.record_failure();
        assert!((esc.ratio() - 0.8).abs() < 1e-12);
        esc.record_failure();
        assert_eq!(esc.ratio(), 1.0, "capped at max_ratio");
        assert_eq!(esc.consecutive_failures(), 3);
    }

    #[test]
    fn escalator_resets_on_success() {
        let mut esc = AlphaEscalator::new(0.3, EscalationConfig::default());
        esc.record_failure();
        esc.record_failure();
        assert!(esc.ratio() > 0.3);
        esc.record_success();
        assert_eq!(esc.ratio(), 0.3);
        assert_eq!(esc.consecutive_failures(), 0);
    }

    #[test]
    #[should_panic(expected = "cap must not undercut")]
    fn escalator_rejects_cap_below_base() {
        let _ = AlphaEscalator::new(0.5, EscalationConfig { factor: 1.5, max_ratio: 0.4 });
    }
}
