//! # acp-core
//!
//! **Adaptive Composition Probing (ACP)** — the primary contribution of
//! "Optimal Component Composition for Scalable Stream Processing"
//! (ICDCS 2005), plus every baseline its evaluation compares against.
//!
//! ACP approximates the NP-hard optimal component composition problem by
//! probing a tunable subset of candidate components per hop:
//!
//! * [`selection`] — per-hop candidate selection (§3.5): risk function
//!   `D(c_i)` and congestion function `V(c_i)` ranking under the coarse
//!   global state.
//! * [`probe`] / [`protocol`] — the probing protocol (Fig. 3): per-hop
//!   qualification against precise local state, transient resource
//!   allocation, probe spawning, optimal composition selection by the
//!   congestion aggregation `φ(λ)`, and session setup.
//! * [`tuning`] — the self-tuning probing ratio (§3.4): on-line profiling
//!   of the α → success-rate mapping with trace replay, re-triggered when
//!   prediction error exceeds δ.
//! * [`optimal`] / [`naive`] / [`algorithms`] — the evaluation's
//!   comparison algorithms behind one [`Composer`] trait: exhaustive
//!   optimal, SP, RP, random, and static.
//! * [`middleware`] — the session-oriented `Find`/`Process`/`Close`
//!   interface of §2.2.
//! * [`overhead`] — message accounting for the efficiency/scalability
//!   experiments.
//!
//! # Example
//!
//! ```
//! use acp_core::prelude::*;
//! use acp_model::prelude::*;
//! use acp_state::{GlobalStateBoard, GlobalStateConfig};
//! use acp_topology::{inet::InetConfig, overlay::{Overlay, OverlayConfig}};
//! use acp_simcore::SimTime;
//! use rand::SeedableRng;
//!
//! # fn main() {
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let ip = InetConfig { nodes: 200, ..InetConfig::default() }.generate(&mut rng);
//! let overlay = Overlay::build(&ip, &OverlayConfig { stream_nodes: 25, neighbors: 4 }, &mut rng);
//! let mut system = StreamSystem::generate(
//!     overlay, FunctionRegistry::standard(), &SystemConfig::default(), &mut rng);
//! let board = GlobalStateBoard::new(&system, GlobalStateConfig::default());
//!
//! let fns: Vec<FunctionId> = system.registry().ids()
//!     .filter(|&f| !system.candidates(f).is_empty()).take(3).collect();
//! let request = Request {
//!     id: RequestId(1),
//!     graph: FunctionGraph::path(fns),
//!     qos: QosRequirement::unconstrained(),
//!     base_resources: ResourceVector::new(0.5, 2.0),
//!     bandwidth_kbps: 5.0,
//!     stream_rate_kbps: 100.0,
//!     constraints: PlacementConstraints::none(),
//!     tenant: None,
//! };
//! let mut acp = AcpComposer::new(ProbingConfig::default(), 42);
//! let outcome = acp.compose(&mut system, &board, &request, SimTime::ZERO);
//! assert!(outcome.session.is_some());
//! # }
//! ```

pub mod admission;
pub mod algorithms;
pub mod middleware;
pub mod migration;
pub mod naive;
pub mod optimal;
pub mod overhead;
pub mod probe;
pub mod protocol;
pub mod repair;
pub mod selection;
pub mod tuning;
pub mod tuning_control;

/// One-stop imports for downstream crates.
pub mod prelude {
    pub use crate::admission::{
        AdmissionConfig, AdmissionController, AdmissionDecision, AdmissionStats, TokenBucket,
    };
    pub use crate::algorithms::{
        AcpComposer, AlgorithmKind, BoundedProbingComposer, ComposeOutcome, Composer,
        OptimalComposer, RandomComposer, RandomProbingComposer, SelectiveProbingComposer,
        StaticComposer,
    };
    pub use crate::middleware::{FailoverReport, Middleware, ProcessReport};
    pub use crate::migration::{
        MigrationRecord, PreemptionConfig, Preemptor, RebalanceConfig, Rebalancer,
    };
    pub use crate::naive::{blind_compose, BlindStrategy};
    pub use crate::optimal::{optimal_compose, OptimalConfig, OptimalOutcome};
    pub use crate::overhead::{centralized_update_messages_per_minute, OverheadStats};
    pub use crate::probe::Probe;
    pub use crate::protocol::{
        compose_with_mode, compose_with_mode_in, probe_compose, probe_compose_with, FinalSelection,
        ProbingConfig, ProbingOutcome, SetupConfig, SetupMode, SetupState, SetupStats, SinglePhase,
        TwoPhase,
    };
    pub use crate::repair::{
        RepairAttempt, RepairFailure, RepairPlanner, RepairVerdict, MINI_REQUEST_BIT,
    };
    pub use crate::selection::{
        probe_quota, select_candidates, select_candidates_with, select_frontier_sharded,
        HopSelection, SelectionScratch,
    };
    pub use crate::tuning::{ProbingRatioTuner, TunerConfig};
    pub use crate::tuning_control::{
        AlphaEscalator, EscalationConfig, PiControllerConfig, PiRatioController,
    };
}

pub use prelude::*;
