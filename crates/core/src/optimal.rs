//! The optimal (exhaustive-search) baseline.
//!
//! "The optimal algorithm exhaustively searches all candidate component
//! compositions to find the best composition" (§4.1). Its *overhead* is
//! the cost of brute-force exhaustive probing — the full probing tree over
//! all candidates at every hop — which is what Figs. 6b/7b chart.
//!
//! Computing the same answer does not require actually materialising that
//! tree: [`optimal_compose`] runs a depth-first branch-and-bound that
//! prunes on (monotone) QoS violation, resource/bandwidth infeasibility,
//! and partial-φ dominance, and therefore returns **exactly** the
//! brute-force result while the reported message count reflects the
//! exhaustive search the paper's optimal algorithm performs.

use acp_model::prelude::*;
use acp_simcore::SimTime;
use acp_topology::SharedPath;

use crate::overhead::OverheadStats;

/// Tunables of the exhaustive baseline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OptimalConfig {
    /// Safety valve on branch-and-bound expansions. When hit, the search
    /// returns the best composition found so far and flags
    /// [`OptimalOutcome::truncated`]. The default is high enough that the
    /// paper-scale experiments never hit it.
    pub max_expansions: u64,
}

impl Default for OptimalConfig {
    fn default() -> Self {
        OptimalConfig { max_expansions: 20_000_000 }
    }
}

/// Result of an exhaustive composition.
#[derive(Debug, Clone)]
pub struct OptimalOutcome {
    /// The established session, if any qualified composition exists.
    pub session: Option<SessionId>,
    /// Message ledger: the cost of brute-force exhaustive probing.
    pub stats: OverheadStats,
    /// Best congestion aggregation φ(λ) achieved.
    pub best_phi: Option<f64>,
    /// True when the expansion cap interrupted the search.
    pub truncated: bool,
}

/// Exhaustively finds the minimum-φ qualified composition for `request`
/// and commits it. See the module docs for the search/accounting split.
pub fn optimal_compose(
    system: &mut StreamSystem,
    request: &Request,
    _now: SimTime,
    config: &OptimalConfig,
) -> OptimalOutcome {
    let order = request.graph.topological_order();

    // Exhaustive-probing overhead: at hop h the brute-force search keeps
    // Π_{i≤h} k_i probes in flight; all complete probes return.
    let mut stats = OverheadStats::new();
    {
        let mut in_flight: u64 = 1;
        for &v in &order {
            let k = system.candidates(request.graph.function(v)).len() as u64;
            in_flight = in_flight.saturating_mul(k);
            stats.probe_messages = stats.probe_messages.saturating_add(in_flight);
            stats.probes_spawned = stats.probes_spawned.saturating_add(in_flight);
            stats.discovery_lookups += 1;
        }
        stats.probes_returned = in_flight;
    }

    // Ground truth is frozen for the duration of the search (the only
    // system mutation below is route memoisation), so availability,
    // effective QoS, static admissibility, predecessor edges, and vertex
    // demands can all be resolved ONCE here instead of per DFS node. The
    // search then runs entirely on flat index-addressed vectors.
    let node_avail: Vec<ResourceVector> =
        system.overlay().nodes().map(|v| system.node_available(v)).collect();
    let link_avail: Vec<f64> = system.overlay().links().map(|l| system.link_available(l)).collect();
    let preds: Vec<Vec<(usize, VertexId)>> = request
        .graph
        .vertices()
        .map(|vertex| {
            request
                .graph
                .edges()
                .iter()
                .enumerate()
                .filter(|(_, &(_, v))| v == vertex)
                .map(|(e, &(u, _))| (e, u))
                .collect()
        })
        .collect();
    let demands: Vec<ResourceVector> =
        request.graph.vertices().map(|v| request.vertex_demand(system.registry(), v)).collect();
    let cands: Vec<Vec<CandInfo>> = request
        .graph
        .vertices()
        .map(|vertex| {
            let function = request.graph.function(vertex);
            system
                .candidates(function)
                .to_vec()
                .into_iter()
                .map(|c| {
                    let component = system.component(c);
                    let static_ok = component.accepts_rate(request.stream_rate_kbps)
                        && request.constraints.admits(&component.attributes);
                    CandInfo { id: c, qos: system.effective_component_qos(c), static_ok }
                })
                .collect()
        })
        .collect();

    // Admissible per-depth lower bound on the φ contribution of the
    // remaining suffix: at depth d the search must still place every
    // vertex order[d..], and placing order[d'] costs at least
    // min over its feasible candidates of Σ_{r>0} r / ra_snapshot —
    // the frozen snapshot availability is an upper bound on the actual
    // availability once earlier picks consume resources (ra_actual ≤
    // ra_snapshot ⇒ r/ra_actual ≥ r/ra_snapshot), and the bandwidth φ
    // terms are nonnegative, so the true suffix cost can never undercut
    // this sum. Pruning on it preserves the exact optimum.
    let depth_count = order.len();
    let mut suffix_lb = vec![0.0f64; depth_count + 1];
    for d in (0..depth_count).rev() {
        let v = order[d];
        let demand = demands[v];
        let mut cheapest = f64::INFINITY;
        for cand in &cands[v] {
            if !cand.static_ok {
                continue;
            }
            let avail = node_avail[cand.id.node.index()];
            if !avail.dominates(&demand) {
                continue; // infeasible even against the snapshot
            }
            let mut phi = 0.0;
            for (kind, r) in demand.iter() {
                if r > 0.0 {
                    phi += r / avail.get(kind);
                }
            }
            cheapest = cheapest.min(phi);
        }
        // A vertex with no snapshot-feasible candidate contributes 0:
        // no completion exists through it, so any admissible value
        // works and 0 keeps the arithmetic finite.
        suffix_lb[d] = suffix_lb[d + 1] + if cheapest.is_finite() { cheapest } else { 0.0 };
    }

    let (node_count, link_count) = (node_avail.len(), link_avail.len());
    let mut search = Search {
        system,
        request,
        order,
        preds,
        cands,
        demands,
        assignment: vec![None; request.graph.len()],
        links: vec![None; request.graph.edges().len()],
        accumulated: vec![Qos::ZERO; request.graph.len()],
        node_avail,
        link_avail,
        node_used: vec![ResourceVector::ZERO; node_count],
        link_used: vec![0.0; link_count],
        move_pool: (0..depth_count).map(|_| Vec::new()).collect(),
        suffix_lb,
        phi: 0.0,
        best_phi: f64::INFINITY,
        best: None,
        expansions: 0,
        max_expansions: config.max_expansions,
    };
    search.dfs(0);
    let truncated = search.expansions >= search.max_expansions;
    let best = search.best.take();
    let best_phi = best.as_ref().map(|&(_, _, phi)| phi);

    let session = best.and_then(|(assignment, links, _)| {
        let composition = Composition { assignment, links };
        let len = composition.assignment.len() as u64;
        match system.commit_session(request, composition) {
            Ok(sid) => {
                stats.confirmation_messages += len;
                Some(sid)
            }
            Err(_) => None,
        }
    });
    if session.is_none() {
        system.release_request_transients(request.id);
    }
    OptimalOutcome { session, stats, best_phi, truncated }
}

/// Per-candidate facts resolved once per request: the candidate's id, its
/// (precise) effective QoS, and whether it passes the static
/// rate/constraint admissibility checks.
#[derive(Clone, Copy)]
struct CandInfo {
    id: ComponentId,
    qos: Qos,
    static_ok: bool,
}

struct Search<'a> {
    system: &'a mut StreamSystem,
    request: &'a Request,
    order: Vec<VertexId>,
    /// Per vertex: incoming `(edge index, predecessor vertex)` pairs.
    preds: Vec<Vec<(usize, VertexId)>>,
    /// Per vertex: the discovery result with cached per-candidate facts.
    cands: Vec<Vec<CandInfo>>,
    /// Per vertex: end-system resource demand.
    demands: Vec<ResourceVector>,
    assignment: Vec<Option<ComponentId>>,
    links: Vec<Option<SharedPath>>,
    accumulated: Vec<Qos>,
    /// Availability snapshots by node/link index (ground truth is frozen
    /// during the search); actual availability = snapshot − used.
    node_avail: Vec<ResourceVector>,
    link_avail: Vec<f64>,
    node_used: Vec<ResourceVector>,
    link_used: Vec<f64>,
    /// Per-depth reusable move buffers (the DFS visits each depth many
    /// times; recycling keeps the allocation out of the hot path).
    move_pool: Vec<Vec<Move>>,
    /// `suffix_lb[d]`: admissible lower bound on the φ the suffix
    /// `order[d..]` must still add (see `optimal_compose` for the
    /// derivation). `suffix_lb[order.len()] == 0`.
    suffix_lb: Vec<f64>,
    phi: f64,
    best_phi: f64,
    best: Option<(Vec<ComponentId>, Vec<SharedPath>, f64)>,
    expansions: u64,
    max_expansions: u64,
}

struct Move {
    component: ComponentId,
    incoming: Vec<(usize, SharedPath)>,
    arrival: Qos,
    delta_phi: f64,
}

impl Search<'_> {
    fn dfs(&mut self, depth: usize) {
        if self.expansions >= self.max_expansions {
            return;
        }
        if depth == self.order.len() {
            if self.phi < self.best_phi {
                self.best_phi = self.phi;
                self.best = Some((
                    self.assignment.iter().map(|a| a.expect("complete")).collect(),
                    self.links.iter().map(|l| l.clone().expect("complete")).collect(),
                    self.phi,
                ));
            }
            return;
        }
        // Suffix bound: even a best-case completion of the remaining
        // vertices cannot beat the incumbent from here.
        if self.phi + self.suffix_lb[depth] >= self.best_phi {
            return;
        }
        let vertex = self.order[depth];
        let mut moves = self.feasible_moves(depth, vertex);
        // Best-first: descending into the cheapest candidate early makes
        // the φ-dominance bound effective.
        moves.sort_by(|a, b| a.delta_phi.total_cmp(&b.delta_phi));
        for m in &moves {
            if self.phi + m.delta_phi + self.suffix_lb[depth + 1] >= self.best_phi {
                break; // sorted: every later move is at least as expensive
            }
            self.apply(vertex, m);
            self.dfs(depth + 1);
            self.undo(vertex, m);
            if self.expansions >= self.max_expansions {
                break;
            }
        }
        moves.clear();
        self.move_pool[depth] = moves;
    }

    /// Enumerates qualified candidate moves at `vertex` (Eqs. 6–8 with
    /// precise state, adjusted for this partial composition's own usage).
    fn feasible_moves(&mut self, depth: usize, vertex: VertexId) -> Vec<Move> {
        let mut moves = std::mem::take(&mut self.move_pool[depth]);
        let demand = self.demands[vertex];
        let b = self.request.bandwidth_kbps;
        let n_preds = self.preds[vertex].len();
        let n_cands = self.cands[vertex].len();
        'candidates: for ci in 0..n_cands {
            self.expansions += 1;
            if self.expansions >= self.max_expansions {
                break;
            }
            let cand = self.cands[vertex][ci];
            if !cand.static_ok {
                continue;
            }
            let c = cand.id;
            // Resources, net of this partial composition's own usage —
            // cheapest filter first, and it needs no path lookups.
            let avail =
                self.node_avail[c.node.index()].saturating_sub(&self.node_used[c.node.index()]);
            if !avail.dominates(&demand) {
                continue;
            }
            // Virtual links from each predecessor.
            let mut incoming = Vec::with_capacity(n_preds);
            for pi in 0..n_preds {
                let (e, u) = self.preds[vertex][pi];
                let p = self.assignment[u].expect("topo order");
                match self.system.virtual_path(p.node, c.node) {
                    Some(path) => incoming.push((e, path)),
                    None => continue 'candidates,
                }
            }
            // Arrival QoS (critical path over incoming branches).
            let mut arrival = cand.qos;
            if n_preds > 0 {
                let mut worst = Qos::ZERO;
                for (&(_, u), (_, path)) in self.preds[vertex].iter().zip(&incoming) {
                    let acc = self.accumulated[u];
                    let q = acc + Qos::new(path.delay, LossRate::from_probability(path.loss_rate));
                    if q.delay > worst.delay {
                        worst.delay = q.delay;
                    }
                    if q.loss > worst.loss {
                        worst.loss = q.loss;
                    }
                }
                arrival = worst + cand.qos;
            }
            if !arrival.satisfies(&self.request.qos) {
                continue;
            }
            // Bandwidth per incoming virtual link + φ terms.
            let mut delta_phi = 0.0;
            for (kind, r) in demand.iter() {
                if r > 0.0 {
                    let ra = avail.get(kind);
                    if ra <= 0.0 {
                        continue 'candidates;
                    }
                    delta_phi += r / ra;
                }
            }
            for (_, path) in &incoming {
                if path.is_colocated() {
                    continue;
                }
                let mut ba = f64::INFINITY;
                for &l in &path.links {
                    ba = ba.min(self.link_avail[l.index()] - self.link_used[l.index()]);
                }
                if ba < b {
                    continue 'candidates;
                }
                if b > 0.0 {
                    if ba <= 0.0 {
                        continue 'candidates;
                    }
                    delta_phi += b / ba;
                }
            }
            moves.push(Move { component: c, incoming, arrival, delta_phi });
        }
        moves
    }

    fn apply(&mut self, vertex: VertexId, m: &Move) {
        self.assignment[vertex] = Some(m.component);
        self.accumulated[vertex] = m.arrival;
        self.node_used[m.component.node.index()] += self.demands[vertex];
        for (e, path) in &m.incoming {
            self.links[*e] = Some(path.clone());
            for &l in &path.links {
                self.link_used[l.index()] += self.request.bandwidth_kbps;
            }
        }
        self.phi += m.delta_phi;
    }

    fn undo(&mut self, vertex: VertexId, m: &Move) {
        let demand = self.demands[vertex];
        self.assignment[vertex] = None;
        let used = &mut self.node_used[m.component.node.index()];
        *used = used.saturating_sub(&demand);
        for (e, path) in &m.incoming {
            self.links[*e] = None;
            for &l in &path.links {
                let used = &mut self.link_used[l.index()];
                *used = (*used - self.request.bandwidth_kbps).max(0.0);
            }
        }
        self.phi -= m.delta_phi;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acp_topology::{InetConfig, Overlay, OverlayConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn build(seed: u64, nodes: usize) -> StreamSystem {
        let mut rng = StdRng::seed_from_u64(seed);
        let ip = InetConfig { nodes: 200, ..InetConfig::default() }.generate(&mut rng);
        let overlay = Overlay::build(&ip, &OverlayConfig { stream_nodes: nodes, neighbors: 4 }, &mut rng);
        StreamSystem::generate(
            overlay,
            FunctionRegistry::standard(),
            &SystemConfig { components_per_node: (2, 3), ..SystemConfig::default() },
            &mut rng,
        )
    }

    fn path_request(sys: &StreamSystem, id: u64, len: usize) -> Request {
        let fns: Vec<FunctionId> =
            sys.registry().ids().filter(|&f| !sys.candidates(f).is_empty()).take(len).collect();
        assert_eq!(fns.len(), len);
        Request {
            id: RequestId(id),
            graph: FunctionGraph::path(fns),
            qos: QosRequirement::unconstrained(),
            base_resources: ResourceVector::new(0.5, 2.0),
            bandwidth_kbps: 5.0,
            stream_rate_kbps: 100.0,
            constraints: PlacementConstraints::none(),
            tenant: None,
        }
    }

    #[test]
    fn finds_a_composition_and_commits() {
        let mut sys = build(1, 25);
        let req = path_request(&sys, 1, 3);
        let out = optimal_compose(&mut sys, &req, SimTime::ZERO, &OptimalConfig::default());
        assert!(out.session.is_some());
        assert!(!out.truncated);
        assert!(out.best_phi.unwrap() > 0.0);
        assert_eq!(sys.session_count(), 1);
    }

    /// Cross-check against literal brute force on a small system.
    #[test]
    fn matches_brute_force_minimum() {
        let mut sys = build(2, 12);
        let req = path_request(&sys, 2, 2);
        // Literal enumeration.
        let f0 = req.graph.function(0);
        let f1 = req.graph.function(1);
        let c0s = sys.candidates(f0).to_vec();
        let c1s = sys.candidates(f1).to_vec();
        let mut best: Option<f64> = None;
        for &a in &c0s {
            for &b in &c1s {
                if !sys.component(a).accepts_rate(req.stream_rate_kbps)
                    || !sys.component(b).accepts_rate(req.stream_rate_kbps)
                {
                    continue;
                }
                let path = sys.virtual_path(a.node, b.node).unwrap();
                let comp = Composition { assignment: vec![a, b], links: vec![path] };
                if sys.qualify(&req, &comp).is_ok() {
                    let phi = congestion_aggregation(&sys, &req, &comp);
                    best = Some(best.map_or(phi, |x: f64| x.min(phi)));
                }
            }
        }
        let out = optimal_compose(&mut sys, &req, SimTime::ZERO, &OptimalConfig::default());
        match best {
            Some(phi) => {
                assert!(out.session.is_some());
                assert!(
                    (out.best_phi.unwrap() - phi).abs() < 1e-9,
                    "B&B {} vs brute force {phi}",
                    out.best_phi.unwrap()
                );
            }
            None => assert!(out.session.is_none()),
        }
    }

    #[test]
    fn overhead_is_exhaustive_tree_size() {
        let mut sys = build(3, 15);
        let req = path_request(&sys, 3, 3);
        let ks: Vec<u64> =
            req.graph.vertices().map(|v| sys.candidates(req.graph.function(v)).len() as u64).collect();
        let expect = ks[0] + ks[0] * ks[1] + ks[0] * ks[1] * ks[2];
        let out = optimal_compose(&mut sys, &req, SimTime::ZERO, &OptimalConfig::default());
        assert_eq!(out.stats.probe_messages, expect);
        assert_eq!(out.stats.probes_returned, ks.iter().product::<u64>());
    }

    #[test]
    fn impossible_request_fails_cleanly() {
        let mut sys = build(4, 15);
        let mut req = path_request(&sys, 4, 3);
        req.base_resources = ResourceVector::new(1e9, 1e9);
        let out = optimal_compose(&mut sys, &req, SimTime::ZERO, &OptimalConfig::default());
        assert!(out.session.is_none());
        assert!(out.best_phi.is_none());
        assert_eq!(sys.session_count(), 0);
    }

    #[test]
    fn expansion_cap_truncates() {
        let mut sys = build(5, 30);
        let req = path_request(&sys, 5, 4);
        let out = optimal_compose(&mut sys, &req, SimTime::ZERO, &OptimalConfig { max_expansions: 3 });
        assert!(out.truncated);
    }

    #[test]
    fn handles_dag_requests() {
        let mut sys = build(6, 25);
        let fns: Vec<FunctionId> =
            sys.registry().ids().filter(|&f| !sys.candidates(f).is_empty()).take(4).collect();
        let graph = FunctionGraph::split_merge(vec![fns[0]], vec![fns[1]], vec![fns[2]], fns[3], vec![]);
        let req = Request {
            id: RequestId(6),
            graph,
            qos: QosRequirement::unconstrained(),
            base_resources: ResourceVector::new(0.3, 1.0),
            bandwidth_kbps: 2.0,
            stream_rate_kbps: 64.0,
            constraints: PlacementConstraints::none(),
            tenant: None,
        };
        let out = optimal_compose(&mut sys, &req, SimTime::ZERO, &OptimalConfig::default());
        assert!(out.session.is_some());
        let session = sys.sessions().next().unwrap();
        assert!(session.composition.is_shape_valid(&req.graph));
    }
}
