//! Probe messages.
//!
//! A probe explores one candidate composition, hop by hop, collecting
//! fine-grain (precise) QoS/resource state along the way (§3.3). For DAG
//! requests the probe generalises from "component path" to "partial
//! assignment over a topological prefix": when it reaches the merge
//! function it already carries both branch choices, which is exactly the
//! merged component graph the deputy would otherwise assemble from
//! per-path probes (§3.3 step 3).

use acp_model::prelude::*;
use acp_simcore::SimDuration;
use acp_topology::SharedPath;

/// The state a probe has accumulated while traversing candidate
/// components in topological order.
#[derive(Debug, Clone, PartialEq)]
pub struct Probe {
    /// Component chosen per function-graph vertex (`None` = not yet
    /// reached).
    pub assignment: Vec<Option<ComponentId>>,
    /// Virtual link chosen per function-graph edge. Shared with the
    /// overlay's path memo, so cloning a probe (which happens on every
    /// hop extension) bumps reference counts instead of copying paths.
    pub links: Vec<Option<SharedPath>>,
    /// Accumulated critical-path QoS at each assigned vertex: the
    /// per-metric maximum over incoming branches of
    /// `acc(pred) + q(link) + q(candidate)` — precise values collected at
    /// each hop.
    pub accumulated: Vec<Option<Qos>>,
    /// Hops travelled so far.
    pub hops: u64,
    /// Cumulative *transport* delay suffered in transit (message-fault
    /// injection, not stream QoS). A probe whose transport delay reaches
    /// the transient-reservation timeout is stale: the leases it placed at
    /// earlier hops expire before it can complete, so the protocol
    /// discards it.
    pub delay: SimDuration,
}

impl Probe {
    /// A fresh probe for a request over `graph` (nothing assigned).
    pub fn initial(graph: &FunctionGraph) -> Self {
        Probe {
            assignment: vec![None; graph.len()],
            links: vec![None; graph.edges().len()],
            accumulated: vec![None; graph.len()],
            hops: 0,
            delay: SimDuration::ZERO,
        }
    }

    /// Number of vertices assigned so far.
    pub fn assigned_count(&self) -> usize {
        self.assignment.iter().filter(|a| a.is_some()).count()
    }

    /// True when every vertex has been assigned.
    pub fn is_complete(&self) -> bool {
        self.assignment.iter().all(|a| a.is_some())
    }

    /// The worst accumulated QoS over assigned vertices (per-metric
    /// maximum) — the probe's current risk position.
    pub fn worst_accumulated(&self) -> Qos {
        let mut worst = Qos::ZERO;
        for q in self.accumulated.iter().flatten() {
            if q.delay > worst.delay {
                worst.delay = q.delay;
            }
            if q.loss > worst.loss {
                worst.loss = q.loss;
            }
        }
        worst
    }

    /// Extends the probe: assigns `component` to `vertex` with the given
    /// incoming virtual links (one per predecessor edge index) and the
    /// accumulated QoS measured at arrival.
    ///
    /// # Panics
    ///
    /// Panics if the vertex is already assigned or an edge link is set
    /// twice.
    pub fn extend(
        &self,
        vertex: VertexId,
        component: ComponentId,
        incoming: &[(usize, SharedPath)],
        arrival_accumulated: Qos,
    ) -> Probe {
        assert!(self.assignment[vertex].is_none(), "vertex {vertex} assigned twice");
        let mut next = self.clone();
        next.assignment[vertex] = Some(component);
        next.accumulated[vertex] = Some(arrival_accumulated);
        for (edge, path) in incoming {
            assert!(next.links[*edge].is_none(), "edge {edge} linked twice");
            next.links[*edge] = Some(path.clone());
        }
        next.hops += 1;
        next
    }

    /// Converts a complete probe into the composition it explored.
    /// Returns `None` when the probe is incomplete.
    pub fn into_composition(self) -> Option<Composition> {
        if !self.is_complete() || self.links.iter().any(|l| l.is_none()) {
            return None;
        }
        Some(Composition {
            assignment: self.assignment.into_iter().map(|a| a.expect("checked complete")).collect(),
            links: self.links.into_iter().map(|l| l.expect("checked complete")).collect(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acp_simcore::SimDuration;
    use acp_topology::{OverlayNodeId, OverlayPath};

    fn graph() -> FunctionGraph {
        FunctionGraph::path(vec![FunctionId(0), FunctionId(1)])
    }

    fn cid(node: u32) -> ComponentId {
        ComponentId::new(OverlayNodeId(node), 0)
    }

    fn qos_ms(ms: u64) -> Qos {
        Qos::from_delay(SimDuration::from_millis(ms))
    }

    #[test]
    fn initial_probe_is_empty() {
        let g = graph();
        let p = Probe::initial(&g);
        assert_eq!(p.assigned_count(), 0);
        assert!(!p.is_complete());
        assert_eq!(p.worst_accumulated(), Qos::ZERO);
        assert_eq!(p.hops, 0);
    }

    #[test]
    fn extend_and_complete() {
        let g = graph();
        let p = Probe::initial(&g).extend(0, cid(0), &[], qos_ms(5));
        assert_eq!(p.assigned_count(), 1);
        assert_eq!(p.hops, 1);
        let path = SharedPath::new(OverlayPath::colocated(OverlayNodeId(0)));
        let p2 = p.extend(1, cid(0), &[(0, path)], qos_ms(9));
        assert!(p2.is_complete());
        assert_eq!(p2.worst_accumulated(), qos_ms(9));
        let comp = p2.into_composition().unwrap();
        assert_eq!(comp.assignment, vec![cid(0), cid(0)]);
        assert_eq!(comp.links.len(), 1);
    }

    #[test]
    fn incomplete_probe_yields_no_composition() {
        let g = graph();
        let p = Probe::initial(&g).extend(0, cid(0), &[], qos_ms(5));
        assert!(p.into_composition().is_none());
    }

    #[test]
    fn worst_accumulated_mixes_metrics() {
        let g = FunctionGraph::split_merge(
            vec![FunctionId(0)],
            vec![FunctionId(1)],
            vec![FunctionId(2)],
            FunctionId(3),
            vec![],
        );
        let mut p = Probe::initial(&g);
        p.assignment[1] = Some(cid(1));
        p.accumulated[1] = Some(Qos::new(SimDuration::from_millis(10), LossRate::from_probability(0.01)));
        p.assignment[2] = Some(cid(2));
        p.accumulated[2] = Some(Qos::new(SimDuration::from_millis(5), LossRate::from_probability(0.05)));
        let worst = p.worst_accumulated();
        assert_eq!(worst.delay, SimDuration::from_millis(10));
        assert!((worst.loss.probability() - 0.05).abs() < 1e-12);
    }

    #[test]
    fn transport_delay_propagates_through_extension() {
        let g = graph();
        let mut p = Probe::initial(&g);
        assert_eq!(p.delay, SimDuration::ZERO);
        p.delay = SimDuration::from_millis(7);
        let child = p.extend(0, cid(0), &[], qos_ms(5));
        assert_eq!(child.delay, SimDuration::from_millis(7));
    }

    #[test]
    #[should_panic(expected = "assigned twice")]
    fn double_assignment_panics() {
        let g = graph();
        let p = Probe::initial(&g).extend(0, cid(0), &[], qos_ms(5));
        let _ = p.extend(0, cid(1), &[], qos_ms(5));
    }
}
