//! The session-oriented middleware interface (§2.2).
//!
//! The paper's stream-processing middleware exposes three operations:
//!
//! * `sessionId = Find(ξ, Q^req, R^req)` — run optimal component
//!   composition; a session record is created on success, a null id
//!   (here: `None`) signals composition failure.
//! * `Process(sessionId, data streams)` — start continuous processing on
//!   the session's component graph.
//! * `Close(sessionId)` — tear the session down and delete its record.
//!
//! [`Middleware`] wires a [`Composer`] to a [`StreamSystem`] plus its
//! [`GlobalStateBoard`] behind exactly this interface.

use acp_model::prelude::*;
use acp_simcore::{SimDuration, SimTime};
use acp_state::GlobalStateBoard;

use crate::algorithms::Composer;
use crate::overhead::OverheadStats;

/// Outcome of processing a batch of data units through a session.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProcessReport {
    /// Units pushed into the session.
    pub units_in: u64,
    /// Expected units delivered after end-to-end loss.
    pub expected_units_out: f64,
    /// End-to-end per-unit latency along the critical path.
    pub per_unit_delay: SimDuration,
    /// End-to-end loss probability.
    pub loss_probability: f64,
}

/// Outcome of recovering from a node failure.
#[derive(Debug, Clone)]
pub struct FailoverReport {
    /// Components undeployed by the failure.
    pub undeployed: Vec<ComponentId>,
    /// Sessions re-established on new compositions: `(old request id,
    /// new session id)`.
    pub recovered: Vec<(RequestId, SessionId)>,
    /// Requests whose sessions could not be recomposed.
    pub lost: Vec<RequestId>,
}

/// The session-oriented stream-processing middleware.
pub struct Middleware<C: Composer> {
    system: StreamSystem,
    board: GlobalStateBoard,
    composer: C,
    overhead: OverheadStats,
}

impl<C: Composer> Middleware<C> {
    /// Assembles the middleware from its parts.
    pub fn new(system: StreamSystem, board: GlobalStateBoard, composer: C) -> Self {
        Middleware { system, board, composer, overhead: OverheadStats::new() }
    }

    /// `Find`: invokes the composition algorithm. Returns the session id
    /// on success, `None` on composition failure.
    pub fn find(&mut self, request: &Request, now: SimTime) -> Option<SessionId> {
        let out = self.composer.compose(&mut self.system, &self.board, request, now);
        self.overhead += out.stats;
        out.session
    }

    /// `Process`: pushes `units` data units through an established
    /// session, reporting the expected delivery and latency from the
    /// composition's aggregated QoS.
    ///
    /// Returns `None` for unknown sessions.
    pub fn process(&self, session: SessionId, units: u64) -> Option<ProcessReport> {
        let record = self.system.session(session)?;
        // Reconstruct the request graph shape from the composition: QoS
        // aggregation only needs per-component QoS and the stored links.
        let qos = self.session_qos(record);
        let loss = qos.loss.probability();
        Some(ProcessReport {
            units_in: units,
            expected_units_out: units as f64 * (1.0 - loss),
            per_unit_delay: qos.delay,
            loss_probability: loss,
        })
    }

    fn session_qos(&self, record: &Session) -> Qos {
        // Critical-path aggregation over the stored composition: sum
        // component QoS plus link QoS along the worst chain. Sessions keep
        // links index-aligned with their request's edges, but the request
        // graph itself is not stored; the composition's own link endpoints
        // recover the chain structure for paths, and for DAGs the
        // summation over all elements is an upper bound — conservative.
        let comp = &record.composition;
        let mut qos: Qos = comp.assignment.iter().map(|&c| self.system.effective_component_qos(c)).sum();
        for path in &comp.links {
            qos += Qos::new(path.delay, LossRate::from_probability(path.loss_rate));
        }
        qos
    }

    /// `Close`: tears down the session, releasing its resources. Returns
    /// `false` for unknown sessions.
    pub fn close(&mut self, session: SessionId) -> bool {
        self.system.close_session(session)
    }

    /// Handles a fail-stop node failure: terminates the affected
    /// sessions, publishes the topology change to the coarse state, and
    /// recomposes each orphaned request on the surviving components
    /// ("for failure resilience, we connect distributed nodes using
    /// application-level overlay links", §2.1 — the mesh survives, the
    /// sessions fail over).
    pub fn handle_node_failure(&mut self, node: acp_topology::OverlayNodeId, now: SimTime) -> FailoverReport {
        let (undeployed, orphaned) = self.system.fail_node(node);
        // The failure is immediately visible in the coarse state (a node
        // death is the loudest possible state variation).
        let msgs = self.board.refresh_nodes(&self.system);
        self.overhead.state_update_messages += msgs;
        self.recompose(undeployed, orphaned, now)
    }

    /// Handles a node coming back online: its (empty) capacity rejoins
    /// the admission pool and its forwarding plane rejoins the mesh. The
    /// coarse state learns of the reborn capacity immediately.
    pub fn handle_node_recovery(&mut self, node: acp_topology::OverlayNodeId) {
        self.system.recover_node(node);
        let msgs = self.board.refresh_nodes(&self.system);
        self.overhead.state_update_messages += msgs;
    }

    /// Handles a virtual-link bandwidth fail-stop: sessions streaming
    /// over the link are terminated and recomposed on routes around it.
    /// An emergency aggregation round publishes the dead link's state.
    pub fn handle_link_failure(&mut self, link: acp_topology::OverlayLinkId, now: SimTime) -> FailoverReport {
        let orphaned = self.system.fail_link(link);
        let msgs = self.board.aggregate_links(&self.system);
        self.overhead.state_update_messages += msgs;
        self.recompose(Vec::new(), orphaned, now)
    }

    /// Handles a link degradation to `factor` of nominal capacity:
    /// sessions evicted by the shrunken link are recomposed elsewhere.
    pub fn handle_link_degrade(
        &mut self,
        link: acp_topology::OverlayLinkId,
        factor: f64,
        now: SimTime,
    ) -> FailoverReport {
        let evicted = self.system.degrade_link(link, factor);
        let msgs = self.board.aggregate_links(&self.system);
        self.overhead.state_update_messages += msgs;
        self.recompose(Vec::new(), evicted, now)
    }

    /// Handles a link coming back to nominal capacity.
    pub fn handle_link_restore(&mut self, link: acp_topology::OverlayLinkId) {
        self.system.restore_link(link);
        let msgs = self.board.aggregate_links(&self.system);
        self.overhead.state_update_messages += msgs;
    }

    /// Handles a single component crash (its node keeps running):
    /// sessions using the component are terminated and recomposed on the
    /// surviving candidates.
    pub fn handle_component_crash(&mut self, id: ComponentId, now: SimTime) -> FailoverReport {
        let orphaned = self.system.crash_component(id);
        let msgs = self.board.refresh_nodes(&self.system);
        self.overhead.state_update_messages += msgs;
        self.recompose(vec![id], orphaned, now)
    }

    /// Recomposes each orphaned request on the surviving components,
    /// splitting them into recovered and lost.
    fn recompose(
        &mut self,
        undeployed: Vec<ComponentId>,
        orphaned: Vec<Request>,
        now: SimTime,
    ) -> FailoverReport {
        let mut recovered = Vec::new();
        let mut lost = Vec::new();
        for request in orphaned {
            let out = self.composer.compose(&mut self.system, &self.board, &request, now);
            self.overhead += out.stats;
            match out.session {
                Some(sid) => recovered.push((request.id, sid)),
                None => lost.push(request.id),
            }
        }
        FailoverReport { undeployed, recovered, lost }
    }

    /// Audits the system invariants **and** the coarse view's structural
    /// coherence in one pass.
    pub fn audit(&self) -> AuditReport {
        let mut report = SystemAuditor::default().audit(&self.system);
        report.merge(AuditReport::from_violations(self.board.audit_against(&self.system)));
        report
    }

    /// Periodic maintenance: expire transient reservations and run
    /// threshold-triggered global-state updates.
    pub fn tick(&mut self, now: SimTime) {
        self.system.expire_transients(now);
        let msgs = self.board.refresh_nodes(&self.system);
        self.overhead.state_update_messages += msgs;
    }

    /// The accumulated message overhead (probing + state maintenance).
    pub fn overhead(&self) -> &OverheadStats {
        &self.overhead
    }

    /// Read access to the system.
    pub fn system(&self) -> &StreamSystem {
        &self.system
    }

    /// Mutable access to the system (tests, failure injection).
    pub fn system_mut(&mut self) -> &mut StreamSystem {
        &mut self.system
    }

    /// Read access to the coarse global state.
    pub fn board(&self) -> &GlobalStateBoard {
        &self.board
    }

    /// The composition algorithm.
    pub fn composer_mut(&mut self) -> &mut C {
        &mut self.composer
    }
}

impl<C: Composer> std::fmt::Debug for Middleware<C> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Middleware")
            .field("algorithm", &self.composer.name())
            .field("sessions", &self.system.session_count())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::AcpComposer;
    use crate::protocol::ProbingConfig;
    use acp_state::GlobalStateConfig;
    use acp_topology::{InetConfig, Overlay, OverlayConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn build() -> Middleware<AcpComposer> {
        let mut rng = StdRng::seed_from_u64(77);
        let ip = InetConfig { nodes: 200, ..InetConfig::default() }.generate(&mut rng);
        let overlay = Overlay::build(&ip, &OverlayConfig { stream_nodes: 25, neighbors: 4 }, &mut rng);
        let system = StreamSystem::generate(
            overlay,
            FunctionRegistry::standard(),
            &SystemConfig::default(),
            &mut rng,
        );
        let board = GlobalStateBoard::new(&system, GlobalStateConfig::default());
        Middleware::new(system, board, AcpComposer::new(ProbingConfig::default(), 5))
    }

    fn request(mw: &Middleware<AcpComposer>, id: u64) -> Request {
        let sys = mw.system();
        let fns: Vec<FunctionId> =
            sys.registry().ids().filter(|&f| !sys.candidates(f).is_empty()).take(3).collect();
        Request {
            id: RequestId(id),
            graph: FunctionGraph::path(fns),
            qos: QosRequirement::unconstrained(),
            base_resources: ResourceVector::new(0.3, 1.5),
            bandwidth_kbps: 3.0,
            stream_rate_kbps: 64.0,
            constraints: PlacementConstraints::none(),
            tenant: None,
        }
    }

    #[test]
    fn find_process_close_lifecycle() {
        let mut mw = build();
        let req = request(&mw, 1);
        let sid = mw.find(&req, SimTime::ZERO).expect("find succeeds");
        assert_eq!(mw.system().session_count(), 1);

        let report = mw.process(sid, 1_000).expect("live session processes");
        assert_eq!(report.units_in, 1_000);
        assert!(report.expected_units_out <= 1_000.0);
        assert!(report.expected_units_out > 0.0);
        assert!(report.per_unit_delay > SimDuration::ZERO);

        assert!(mw.close(sid));
        assert_eq!(mw.system().session_count(), 0);
        assert!(mw.process(sid, 1).is_none(), "closed session gone");
        assert!(!mw.close(sid), "double close fails");
    }

    #[test]
    fn failed_find_returns_none() {
        let mut mw = build();
        let mut req = request(&mw, 2);
        req.qos = QosRequirement::new(SimDuration::from_micros(1), LossRate::ZERO);
        assert!(mw.find(&req, SimTime::ZERO).is_none());
        assert_eq!(mw.system().session_count(), 0);
    }

    #[test]
    fn overhead_accumulates_across_finds() {
        let mut mw = build();
        let r1 = request(&mw, 3);
        mw.find(&r1, SimTime::ZERO);
        let after_one = mw.overhead().probe_messages;
        let r2 = request(&mw, 4);
        mw.find(&r2, SimTime::ZERO);
        assert!(mw.overhead().probe_messages > after_one);
    }

    #[test]
    fn node_failure_fails_over_sessions() {
        let mut mw = build();
        // Establish a handful of sessions.
        let mut sids = Vec::new();
        for i in 0..8 {
            let req = request(&mw, 300 + i);
            if let Some(sid) = mw.find(&req, SimTime::ZERO) {
                sids.push(sid);
            }
        }
        assert!(sids.len() >= 6, "idle system should admit");
        // Fail the node hosting the most sessions' components.
        let victim = mw
            .system()
            .sessions()
            .flat_map(|s| s.composition.assignment.iter().map(|c| c.node))
            .next()
            .expect("sessions exist");
        let before_sessions = mw.system().session_count();
        let report = mw.handle_node_failure(victim, SimTime::from_secs(1));
        assert!(mw.system().is_node_failed(victim));
        assert!(!report.undeployed.is_empty());
        assert!(!report.recovered.is_empty() || !report.lost.is_empty(), "some session was affected");
        // Recovered sessions avoid the failed node entirely.
        for &(_, sid) in &report.recovered {
            let composition = &mw.system().session(sid).unwrap().composition;
            assert!(composition.assignment.iter().all(|c| c.node != victim));
        }
        // Session count: before - affected + recovered
        let affected = report.recovered.len() + report.lost.len();
        assert_eq!(
            mw.system().session_count(),
            before_sessions - affected + report.recovered.len()
        );
    }

    #[test]
    fn failed_node_rejects_everything() {
        let mut mw = build();
        let victim = acp_topology::OverlayNodeId(0);
        mw.handle_node_failure(victim, SimTime::ZERO);
        let sys = mw.system_mut();
        assert_eq!(sys.node_available(victim), ResourceVector::ZERO);
        assert_eq!(sys.node(victim).component_count(), 0);
        // Discovery no longer offers anything on the failed node.
        for f in sys.registry().ids() {
            assert!(sys.candidates(f).iter().all(|c| c.node != victim));
        }
        // Recovery brings the (empty) node back.
        sys.recover_node(victim);
        assert!(!sys.is_node_failed(victim));
        assert!(sys.node_available(victim).cpu > 0.0);
    }

    #[test]
    fn link_failure_fails_over_and_audits_clean() {
        let mut mw = build();
        for i in 0..10 {
            let req = request(&mw, 400 + i);
            mw.find(&req, SimTime::ZERO);
        }
        // Fail a link some session actually streams over, if any.
        let used = mw
            .system()
            .sessions()
            .flat_map(|s| s.link_allocations().iter().map(|&(l, _)| l))
            .next();
        let link = used.unwrap_or(acp_topology::OverlayLinkId(0));
        let report = mw.handle_link_failure(link, SimTime::from_secs(1));
        assert!(mw.system().is_link_failed(link));
        assert_eq!(mw.system().link_available(link), 0.0);
        if used.is_some() {
            assert!(!report.recovered.is_empty() || !report.lost.is_empty());
        }
        // No recovered session streams over the dead link.
        for &(_, sid) in &report.recovered {
            assert!(!mw.system().session(sid).unwrap().uses_link(link));
        }
        let audit = mw.audit();
        assert!(audit.is_clean(), "{audit}");
        // Restore re-opens the bandwidth.
        mw.handle_link_restore(link);
        assert!(!mw.system().is_link_failed(link));
        assert!(mw.audit().is_clean());
    }

    #[test]
    fn component_crash_fails_over_sessions() {
        let mut mw = build();
        for i in 0..6 {
            let req = request(&mw, 500 + i);
            mw.find(&req, SimTime::ZERO);
        }
        let victim = mw
            .system()
            .sessions()
            .flat_map(|s| s.composition.assignment.iter().copied())
            .next()
            .expect("sessions exist");
        let report = mw.handle_component_crash(victim, SimTime::from_secs(1));
        assert_eq!(report.undeployed, vec![victim]);
        assert!(!report.recovered.is_empty() || !report.lost.is_empty());
        // The crashed component serves nothing and is gone from discovery.
        assert!(!mw.system().component_in_use(victim));
        for f in mw.system().registry().ids() {
            assert!(mw.system().candidates(f).iter().all(|&c| c != victim));
        }
        for &(_, sid) in &report.recovered {
            let composition = &mw.system().session(sid).unwrap().composition;
            assert!(!composition.assignment.contains(&victim));
        }
        let audit = mw.audit();
        assert!(audit.is_clean(), "{audit}");
    }

    #[test]
    fn node_recovery_rejoins_admission_and_mesh() {
        let mut mw = build();
        let victim = acp_topology::OverlayNodeId(1);
        mw.handle_node_failure(victim, SimTime::ZERO);
        assert!(mw.system().overlay().is_node_down(victim));
        mw.handle_node_recovery(victim);
        assert!(!mw.system().is_node_failed(victim));
        assert!(!mw.system().overlay().is_node_down(victim));
        assert!(mw.system().node_available(victim).cpu > 0.0);
        let audit = mw.audit();
        assert!(audit.is_clean(), "{audit}");
    }

    #[test]
    fn tick_runs_state_maintenance() {
        let mut mw = build();
        // heavy enough load to cross the publish threshold somewhere
        for i in 0..20 {
            let mut req = request(&mw, 100 + i);
            req.base_resources = ResourceVector::new(2.0, 10.0);
            mw.find(&req, SimTime::ZERO);
        }
        mw.tick(SimTime::from_secs(10));
        assert!(mw.overhead().state_update_messages > 0);
    }
}
