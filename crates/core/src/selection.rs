//! Per-hop candidate component selection (§3.5).
//!
//! When a probe is about to advance to the next-hop function, the current
//! node must pick which `M = ⌈α·k⌉` of the `k` candidate components to
//! probe. ACP picks *good* candidates under the guidance of the
//! coarse-grain global state: it filters interface-incompatible and
//! unqualified candidates (Eqs. 6–8 evaluated on coarse values), ranks the
//! rest by the risk function `D(c_i)` (Eq. 9) breaking near-ties with the
//! congestion function `V(c_i)` (Eq. 10), and returns the best `M`. The
//! fully distributed baseline (RP) instead picks `M` uniformly at random.

use acp_model::prelude::*;
use acp_state::GlobalStateBoard;
use acp_topology::{OverlayNodeId, SharedPath};
use rand::seq::SliceRandom;
use rand::Rng;

use crate::overhead::OverheadStats;

/// How a node chooses which next-hop candidates to probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HopSelection {
    /// Risk/congestion ranking guided by the coarse global state (ACP and
    /// SP).
    Ranked,
    /// Uniform random choice without consulting the global state (RP).
    Random,
}

/// A candidate the current hop decided to probe.
#[derive(Debug, Clone, PartialEq)]
pub struct CandidatePlan {
    /// The component to probe.
    pub component: ComponentId,
    /// The virtual link from each already-assigned predecessor: pairs of
    /// `(graph edge index, overlay path)`. Empty for the source vertex.
    /// Paths are shared with the overlay's memo — cheap to clone.
    pub incoming: Vec<(usize, SharedPath)>,
}

/// Reusable buffers for [`select_candidates_with`]. One selection call
/// per probe per hop allocates a candidate-id list and (for `Ranked`) a
/// scored list; threading one scratch through a whole probing run keeps
/// those allocations out of the hot loop.
#[derive(Debug, Default)]
pub struct SelectionScratch {
    ids: Vec<ComponentId>,
    scored: Vec<(f64, f64, CandidatePlan)>,
}

/// Inputs to one hop's selection decision.
#[derive(Debug)]
pub struct HopContext<'a> {
    /// The request being composed.
    pub request: &'a Request,
    /// The vertex being assigned at this hop.
    pub vertex: VertexId,
    /// Already-assigned predecessors: `(graph edge index, component,
    /// accumulated QoS at that predecessor)`. Borrowed so the probing
    /// loop can carve contexts out of one reusable arena.
    pub predecessors: &'a [(usize, ComponentId, Qos)],
}

/// The number of candidates to probe for a function with `k` candidates at
/// probing ratio `alpha` — `⌈α·k⌉`, at least 1 when any candidate exists.
pub fn probe_quota(k: usize, alpha: f64) -> usize {
    if k == 0 {
        return 0;
    }
    ((alpha * k as f64).ceil() as usize).clamp(1, k)
}

/// Selects the candidates to probe for `ctx.vertex`.
///
/// `Ranked` consults the coarse [`GlobalStateBoard`]; `Random` touches no
/// global state (counting no board query). Both honour the interface
/// stream-rate compatibility check, which needs only statically-known
/// component interface specifications.
#[allow(clippy::too_many_arguments)] // one parameter per protocol input (Fig. 3)
pub fn select_candidates<R: Rng + ?Sized>(
    system: &mut StreamSystem,
    board: &GlobalStateBoard,
    ctx: &HopContext<'_>,
    strategy: HopSelection,
    alpha: f64,
    risk_epsilon: f64,
    rng: &mut R,
    stats: &mut OverheadStats,
) -> Vec<CandidatePlan> {
    let mut scratch = SelectionScratch::default();
    select_candidates_with(system, board, ctx, strategy, alpha, risk_epsilon, rng, stats, &mut scratch)
}

/// [`select_candidates`] with caller-provided scratch buffers; the hot
/// probing loop threads one [`SelectionScratch`] through every hop.
#[allow(clippy::too_many_arguments)] // one parameter per protocol input (Fig. 3)
pub fn select_candidates_with<R: Rng + ?Sized>(
    system: &mut StreamSystem,
    board: &GlobalStateBoard,
    ctx: &HopContext<'_>,
    strategy: HopSelection,
    alpha: f64,
    risk_epsilon: f64,
    rng: &mut R,
    stats: &mut OverheadStats,
    scratch: &mut SelectionScratch,
) -> Vec<CandidatePlan> {
    let function = ctx.request.graph.function(ctx.vertex);
    stats.discovery_lookups += 1;
    scratch.ids.clear();
    scratch.ids.extend_from_slice(system.candidates(function));
    let quota = probe_quota(scratch.ids.len(), alpha);
    if quota == 0 {
        return Vec::new();
    }

    // Interface compatibility and placement constraints (both static
    // specifications known without probing).
    let rate = ctx.request.stream_rate_kbps;
    let request = ctx.request;
    scratch.ids.retain(|&c| {
        let component = system.component(c);
        component.accepts_rate(rate) && request.constraints.admits(&component.attributes)
    });

    match strategy {
        HopSelection::Random => {
            scratch.ids.shuffle(rng);
            scratch.ids.truncate(quota);
            let mut plans = Vec::with_capacity(scratch.ids.len());
            for &c in &scratch.ids {
                if let Some(plan) = plan_for(system, c, ctx) {
                    plans.push(plan);
                }
            }
            plans
        }
        HopSelection::Ranked => {
            stats.global_state_queries += 1;
            let demand = ctx.request.vertex_demand(system.registry(), ctx.vertex);
            let scored = &mut scratch.scored;
            scored.clear();
            for &c in &scratch.ids {
                let Some(plan) = plan_for(system, c, ctx) else { continue };
                // Coarse states from the board. Candidates the board has
                // not learnt about yet (freshly migrated) are skipped —
                // they become visible after their node's next update. The
                // dense-id lookup is a flat array read, no hashing.
                let Some(dense) = system.dense_of(c) else { continue };
                let Some(cand_qos) = board.component_qos_dense(dense) else { continue };
                let avail = board.node_available(c.node);
                let (link_qos, link_avail, acc) = incoming_summary(board, &plan, ctx);
                if is_unqualified(
                    acc,
                    cand_qos,
                    link_qos,
                    &ctx.request.qos,
                    &avail,
                    &demand,
                    link_avail,
                    ctx.request.bandwidth_kbps,
                ) {
                    continue;
                }
                let d = risk_function(acc, cand_qos, link_qos, &ctx.request.qos);
                let v = congestion_function(&avail, &demand, link_avail, ctx.request.bandwidth_kbps);
                scored.push((d, v, plan));
            }
            rank_scored(scored, risk_epsilon);
            scored.truncate(quota);
            // Drain (rather than move) so the buffer's capacity is kept
            // for the next hop.
            scored.drain(..).map(|(_, _, plan)| plan).collect()
        }
    }
}

/// Orders scored candidates per §3.5: "Candidates with smaller risk
/// values are better; if two have similar risk values, compare them by
/// the congestion function." Raw ±ε closeness is not transitive, so risks
/// are bucketed into ε-wide bands: order by band, then by the congestion
/// function within a band. (ε = 0 orders strictly by risk, breaking exact
/// ties by congestion.) Shared by the sequential and sharded selection
/// paths so their rankings cannot drift.
fn rank_scored(scored: &mut [(f64, f64, CandidatePlan)], risk_epsilon: f64) {
    let band = |d: f64| -> i64 {
        if risk_epsilon <= 0.0 || !d.is_finite() {
            return if d.is_finite() { 0 } else { i64::MAX };
        }
        (d / risk_epsilon).floor().clamp(i64::MIN as f64, (i64::MAX - 1) as f64) as i64
    };
    if risk_epsilon <= 0.0 {
        scored.sort_by(|a, b| a.0.total_cmp(&b.0).then_with(|| a.1.total_cmp(&b.1)));
    } else {
        scored.sort_by(|a, b| {
            band(a.0)
                .cmp(&band(b.0))
                .then_with(|| a.1.total_cmp(&b.1))
                .then_with(|| a.0.total_cmp(&b.0))
        });
    }
}

/// `(risk, congestion, incoming links)` of a candidate that survived
/// reachability, board visibility, and qualification.
type ScoredCandidate = (f64, f64, Vec<(usize, SharedPath)>);

/// One shard worker's verdict on a `(probe, candidate)` scoring item.
struct ShardItem {
    /// Path-memo lookups this item executed, in issue order
    /// (short-circuiting on an unreachable predecessor exactly like
    /// [`plan_for`]). The coordinator replays them through
    /// [`StreamSystem::admit_virtual_path`] so memo contents and hit/miss
    /// counters match the sequential run byte for byte.
    queries: Vec<(OverlayNodeId, OverlayNodeId, Option<SharedPath>)>,
    /// `Some` when the candidate survived reachability, board
    /// visibility, and qualification.
    scored: Option<ScoredCandidate>,
}

/// Scores one candidate for one probe entirely read-only: paths resolve
/// via the memo peek or a cache-neutral recompute, and the risk (Eq. 9) /
/// congestion (Eq. 10) values use only coarse board state. Path
/// extraction and the scoring formulas are pure functions of system and
/// board state, so a shard worker computes exactly the bytes the
/// sequential [`select_candidates_with`] would.
fn score_item(
    system: &StreamSystem,
    board: &GlobalStateBoard,
    request: &Request,
    vertex: VertexId,
    demand: &ResourceVector,
    predecessors: &[(usize, ComponentId, Qos)],
    component: ComponentId,
) -> ShardItem {
    let overlay = system.overlay();
    let mut queries = Vec::with_capacity(predecessors.len());
    let mut incoming = Vec::with_capacity(predecessors.len());
    let mut reachable = true;
    for &(edge, pred, _) in predecessors {
        let resolved = match overlay.peek_virtual_path(pred.node, component.node) {
            Some(entry) => entry,
            None => overlay
                .compute_virtual_path_readonly(pred.node, component.node)
                .map(SharedPath::new),
        };
        queries.push((pred.node, component.node, resolved.clone()));
        match resolved {
            Some(path) => incoming.push((edge, path)),
            None => {
                reachable = false;
                break;
            }
        }
    }
    if !reachable {
        return ShardItem { queries, scored: None };
    }
    let plan = CandidatePlan { component, incoming };
    let Some(dense) = system.dense_of(component) else {
        return ShardItem { queries, scored: None };
    };
    let Some(cand_qos) = board.component_qos_dense(dense) else {
        return ShardItem { queries, scored: None };
    };
    let avail = board.node_available(component.node);
    let ctx = HopContext { request, vertex, predecessors };
    let (link_qos, link_avail, acc) = incoming_summary(board, &plan, &ctx);
    if is_unqualified(
        acc,
        cand_qos,
        link_qos,
        &request.qos,
        &avail,
        demand,
        link_avail,
        request.bandwidth_kbps,
    ) {
        return ShardItem { queries, scored: None };
    }
    let d = risk_function(acc, cand_qos, link_qos, &request.qos);
    let v = congestion_function(&avail, demand, link_avail, request.bandwidth_kbps);
    ShardItem { queries, scored: Some((d, v, plan.incoming)) }
}

/// Sharded [`HopSelection::Ranked`] selection for one whole frontier:
/// every live probe's `(candidate)` scoring items fan out to the shard
/// that owns the candidate's node, run read-only behind the scatter
/// barrier, and merge on the coordinator in the exact per-probe,
/// per-candidate order of the sequential loop — path-memo admissions,
/// hit/miss accounting, rankings, and the emitted `(rank, probe, plan)`
/// proposals are byte-identical to calling [`select_candidates_with`]
/// once per probe. Ranked selection draws no randomness, which is what
/// makes the fan-out safe; `Random` selection stays sequential.
#[allow(clippy::too_many_arguments)] // mirrors the sequential entry point
pub fn select_frontier_sharded(
    system: &mut StreamSystem,
    board: &GlobalStateBoard,
    request: &Request,
    vertex: VertexId,
    pred_buf: &[(usize, ComponentId, Qos)],
    pred_ranges: &[(usize, usize)],
    alpha: f64,
    risk_epsilon: f64,
    stats: &mut OverheadStats,
    rt: &mut ShardedRuntime,
    proposals: &mut Vec<(usize, usize, CandidatePlan)>,
) {
    let function = request.graph.function(vertex);
    let n_probes = pred_ranges.len();
    stats.discovery_lookups += n_probes as u64;
    let raw = system.candidates(function);
    let quota = probe_quota(raw.len(), alpha);
    if quota == 0 {
        return;
    }
    stats.global_state_queries += n_probes as u64;
    // Static interface/placement filters — identical for every probe.
    let rate = request.stream_rate_kbps;
    let ids: Vec<ComponentId> = raw
        .iter()
        .copied()
        .filter(|&c| {
            let component = system.component(c);
            component.accepts_rate(rate) && request.constraints.admits(&component.attributes)
        })
        .collect();
    let demand = request.vertex_demand(system.registry(), vertex);

    // Fan out: each (probe, candidate) item goes to the shard owning the
    // candidate's node — the probe message crossing into that shard.
    let shards = rt.shards();
    let mut work: Vec<Vec<(usize, usize)>> = vec![Vec::new(); shards];
    for p in 0..n_probes {
        for (ci, &c) in ids.iter().enumerate() {
            work[rt.node_owner(c.node)].push((p, ci));
        }
    }
    let sys: &StreamSystem = system;
    let work_ref = &work;
    let ids_ref = &ids;
    let results: Vec<Vec<ShardItem>> = rt.scatter(|s| {
        work_ref[s]
            .iter()
            .map(|&(p, ci)| {
                let (ps, pe) = pred_ranges[p];
                score_item(sys, board, request, vertex, &demand, &pred_buf[ps..pe], ids_ref[ci])
            })
            .collect()
    });
    let mut slots: Vec<Option<ShardItem>> = Vec::with_capacity(n_probes * ids.len());
    slots.resize_with(n_probes * ids.len(), || None);
    for (items, assignment) in results.into_iter().zip(&work) {
        for (item, &(p, ci)) in items.into_iter().zip(assignment) {
            slots[p * ids.len() + ci] = Some(item);
        }
    }

    // Deterministic merge: replay each probe's candidate loop in
    // sequential order, admitting path-memo entries as the sequential
    // lookups would, then rank and emit under the per-probe quota.
    let mut scored: Vec<(f64, f64, CandidatePlan)> = Vec::new();
    for p in 0..n_probes {
        scored.clear();
        for (ci, &c) in ids.iter().enumerate() {
            let item = slots[p * ids.len() + ci].take().expect("every item scored exactly once");
            for (from, to, resolved) in item.queries {
                system.admit_virtual_path(from, to, resolved);
            }
            if let Some((d, v, incoming)) = item.scored {
                scored.push((d, v, CandidatePlan { component: c, incoming }));
            }
        }
        rank_scored(&mut scored, risk_epsilon);
        scored.truncate(quota);
        for (rank, (_, _, plan)) in scored.drain(..).enumerate() {
            proposals.push((rank, p, plan));
        }
    }
}

/// Builds the candidate's plan: virtual links from every assigned
/// predecessor. `None` when some predecessor cannot reach the candidate.
fn plan_for(system: &mut StreamSystem, component: ComponentId, ctx: &HopContext<'_>) -> Option<CandidatePlan> {
    let mut incoming = Vec::with_capacity(ctx.predecessors.len());
    for &(edge, pred, _) in ctx.predecessors {
        let path = system.virtual_path(pred.node, component.node)?;
        incoming.push((edge, path));
    }
    Some(CandidatePlan { component, incoming })
}

/// Summarises the incoming virtual links under **coarse** state: the
/// worst-branch `(link QoS, bottleneck availability, accumulated QoS at
/// arrival excluding the candidate itself)`.
fn incoming_summary(board: &GlobalStateBoard, plan: &CandidatePlan, ctx: &HopContext<'_>) -> (Qos, f64, Qos) {
    if ctx.predecessors.is_empty() {
        return (Qos::ZERO, f64::INFINITY, Qos::ZERO);
    }
    let mut worst_link = Qos::ZERO;
    let mut min_avail = f64::INFINITY;
    let mut acc = Qos::ZERO;
    for (i, &(_, _, pred_acc)) in ctx.predecessors.iter().enumerate() {
        let path = &plan.incoming[i].1;
        let link_qos = Qos::new(path.delay, LossRate::from_probability(path.loss_rate));
        min_avail = min_avail.min(board.path_available(path));
        if link_qos.delay > worst_link.delay {
            worst_link.delay = link_qos.delay;
        }
        if link_qos.loss > worst_link.loss {
            worst_link.loss = link_qos.loss;
        }
        let branch = pred_acc; // candidate + link added by caller formulas
        if branch.delay > acc.delay {
            acc.delay = branch.delay;
        }
        if branch.loss > acc.loss {
            acc.loss = branch.loss;
        }
    }
    (worst_link, min_avail, acc)
}

/// Precise arrival accumulation at a candidate: per-metric maximum over
/// incoming branches of `acc(pred) + q(link)`, plus the candidate's own
/// (precise) QoS. Used by the per-hop probe processing.
pub fn arrival_accumulated(plan: &CandidatePlan, ctx: &HopContext<'_>, candidate_qos: Qos) -> Qos {
    let mut worst = Qos::ZERO;
    if ctx.predecessors.is_empty() {
        return candidate_qos;
    }
    for (i, &(_, _, pred_acc)) in ctx.predecessors.iter().enumerate() {
        let path = &plan.incoming[i].1;
        let link_qos = Qos::new(path.delay, LossRate::from_probability(path.loss_rate));
        let branch = pred_acc + link_qos;
        if branch.delay > worst.delay {
            worst.delay = branch.delay;
        }
        if branch.loss > worst.loss {
            worst.loss = branch.loss;
        }
    }
    worst + candidate_qos
}

#[cfg(test)]
mod tests {
    use super::*;
    use acp_state::GlobalStateConfig;
    use acp_topology::{InetConfig, Overlay, OverlayConfig, OverlayNodeId};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn build() -> (StreamSystem, GlobalStateBoard) {
        let mut rng = StdRng::seed_from_u64(17);
        let ip = InetConfig { nodes: 200, ..InetConfig::default() }.generate(&mut rng);
        let overlay = Overlay::build(&ip, &OverlayConfig { stream_nodes: 30, neighbors: 4 }, &mut rng);
        let sys = StreamSystem::generate(
            overlay,
            FunctionRegistry::standard(),
            &SystemConfig::default(),
            &mut rng,
        );
        let board = GlobalStateBoard::new(&sys, GlobalStateConfig::default());
        (sys, board)
    }

    fn request_for(sys: &StreamSystem) -> Request {
        let fns: Vec<FunctionId> =
            sys.registry().ids().filter(|&f| sys.candidates(f).len() >= 3).take(2).collect();
        assert_eq!(fns.len(), 2);
        Request {
            id: RequestId(7),
            graph: FunctionGraph::path(fns),
            qos: QosRequirement::unconstrained(),
            base_resources: ResourceVector::new(0.5, 2.0),
            bandwidth_kbps: 5.0,
            stream_rate_kbps: 100.0,
            constraints: PlacementConstraints::none(),
        }
    }

    #[test]
    fn quota_formula_matches_paper() {
        // "if there are ten candidate components … and the probing ratio
        // α = 0.3, then we can probe 0.3 × 10 = 3 candidates"
        assert_eq!(probe_quota(10, 0.3), 3);
        assert_eq!(probe_quota(10, 1.0), 10);
        assert_eq!(probe_quota(10, 0.01), 1, "at least one probe");
        assert_eq!(probe_quota(0, 0.5), 0);
        assert_eq!(probe_quota(7, 0.3), 3); // ceil(2.1)
    }

    #[test]
    fn ranked_selection_respects_quota_and_function() {
        let (mut sys, board) = build();
        let request = request_for(&sys);
        let ctx = HopContext { request: &request, vertex: 0, predecessors: &[] };
        let mut rng = StdRng::seed_from_u64(1);
        let mut stats = OverheadStats::new();
        let k = sys.candidates(request.graph.function(0)).len();
        let plans = select_candidates(&mut sys, &board, &ctx, HopSelection::Ranked, 0.5, 0.05, &mut rng, &mut stats);
        assert!(!plans.is_empty());
        assert!(plans.len() <= probe_quota(k, 0.5));
        for p in &plans {
            assert_eq!(sys.component(p.component).function, request.graph.function(0));
            assert!(p.incoming.is_empty(), "source vertex has no incoming link");
        }
        assert_eq!(stats.discovery_lookups, 1);
        assert_eq!(stats.global_state_queries, 1);
    }

    #[test]
    fn random_selection_skips_board() {
        let (mut sys, board) = build();
        let request = request_for(&sys);
        let ctx = HopContext { request: &request, vertex: 0, predecessors: &[] };
        let mut rng = StdRng::seed_from_u64(2);
        let mut stats = OverheadStats::new();
        let plans = select_candidates(&mut sys, &board, &ctx, HopSelection::Random, 0.5, 0.05, &mut rng, &mut stats);
        assert!(!plans.is_empty());
        assert_eq!(stats.global_state_queries, 0, "RP never queries the global state");
    }

    #[test]
    fn ranked_prefers_less_loaded_nodes() {
        let (mut sys, board) = build();
        let request = request_for(&sys);
        let f = request.graph.function(0);
        let mut rng = StdRng::seed_from_u64(3);
        let mut stats = OverheadStats::new();
        let ctx = HopContext { request: &request, vertex: 0, predecessors: &[] };
        let plans = select_candidates(&mut sys, &board, &ctx, HopSelection::Ranked, 0.3, 0.05, &mut rng, &mut stats);
        let quota = probe_quota(sys.candidates(f).len(), 0.3);
        assert_eq!(plans.len(), quota.min(plans.len()));
        // the selected set should not contain a candidate strictly worse
        // (higher risk and congestion) than an unselected one
        // — verified indirectly: selected candidates are qualified.
        for p in &plans {
            assert!(board.node_available(p.component.node).dominates(&request.vertex_demand(sys.registry(), 0)));
        }
    }

    #[test]
    fn second_hop_carries_virtual_links() {
        let (mut sys, board) = build();
        let request = request_for(&sys);
        let first = sys.candidates(request.graph.function(0))[0];
        let ctx = HopContext {
            request: &request,
            vertex: 1,
            predecessors: &[(0, first, Qos::ZERO)],
        };
        let mut rng = StdRng::seed_from_u64(4);
        let mut stats = OverheadStats::new();
        let plans = select_candidates(&mut sys, &board, &ctx, HopSelection::Ranked, 1.0, 0.05, &mut rng, &mut stats);
        assert!(!plans.is_empty());
        for p in &plans {
            assert_eq!(p.incoming.len(), 1);
            let (edge, path) = &p.incoming[0];
            assert_eq!(*edge, 0);
            if p.component.node == first.node {
                assert!(path.is_colocated());
            } else {
                assert_eq!(path.nodes.first(), Some(&first.node));
                assert_eq!(path.nodes.last(), Some(&p.component.node));
            }
        }
    }

    #[test]
    fn incompatible_rate_filters_everything() {
        let (mut sys, board) = build();
        let mut request = request_for(&sys);
        request.stream_rate_kbps = 1e12; // no interface accepts this
        let ctx = HopContext { request: &request, vertex: 0, predecessors: &[] };
        let mut rng = StdRng::seed_from_u64(5);
        let mut stats = OverheadStats::new();
        let plans = select_candidates(&mut sys, &board, &ctx, HopSelection::Ranked, 1.0, 0.05, &mut rng, &mut stats);
        assert!(plans.is_empty());
    }

    #[test]
    fn arrival_accumulated_takes_worst_branch() {
        let path_a = SharedPath::new(acp_topology::OverlayPath::colocated(OverlayNodeId(0)));
        let request = Request {
            id: RequestId(1),
            graph: FunctionGraph::path(vec![FunctionId(0), FunctionId(1)]),
            qos: QosRequirement::unconstrained(),
            base_resources: ResourceVector::ZERO,
            bandwidth_kbps: 0.0,
            stream_rate_kbps: 0.0,
            constraints: PlacementConstraints::none(),
        };
        let slow = Qos::from_delay(acp_simcore::SimDuration::from_millis(40));
        let fast = Qos::from_delay(acp_simcore::SimDuration::from_millis(2));
        let ctx = HopContext {
            request: &request,
            vertex: 1,
            predecessors: &[
                (0, ComponentId::new(OverlayNodeId(0), 0), slow),
                (1, ComponentId::new(OverlayNodeId(0), 1), fast),
            ],
        };
        let plan = CandidatePlan {
            component: ComponentId::new(OverlayNodeId(0), 2),
            incoming: vec![(0, path_a.clone()), (1, path_a)],
        };
        let cand = Qos::from_delay(acp_simcore::SimDuration::from_millis(3));
        let acc = arrival_accumulated(&plan, &ctx, cand);
        assert_eq!(acc.delay, acp_simcore::SimDuration::from_millis(43));
    }
}
