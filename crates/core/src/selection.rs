//! Per-hop candidate component selection (§3.5).
//!
//! When a probe is about to advance to the next-hop function, the current
//! node must pick which `M = ⌈α·k⌉` of the `k` candidate components to
//! probe. ACP picks *good* candidates under the guidance of the
//! coarse-grain global state: it filters interface-incompatible and
//! unqualified candidates (Eqs. 6–8 evaluated on coarse values), ranks the
//! rest by the risk function `D(c_i)` (Eq. 9) breaking near-ties with the
//! congestion function `V(c_i)` (Eq. 10), and returns the best `M`. The
//! fully distributed baseline (RP) instead picks `M` uniformly at random.

use acp_model::prelude::*;
use acp_state::{GlobalStateBoard, IndexEntry};
use acp_topology::{OverlayNodeId, SharedPath};
use rand::seq::SliceRandom;
use rand::Rng;

use crate::overhead::OverheadStats;

/// How a node chooses which next-hop candidates to probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HopSelection {
    /// Risk/congestion ranking guided by the coarse global state (ACP and
    /// SP).
    Ranked,
    /// Uniform random choice without consulting the global state (RP).
    Random,
}

/// A candidate the current hop decided to probe.
#[derive(Debug, Clone, PartialEq)]
pub struct CandidatePlan {
    /// The component to probe.
    pub component: ComponentId,
    /// The virtual link from each already-assigned predecessor: pairs of
    /// `(graph edge index, overlay path)`. Empty for the source vertex.
    /// Paths are shared with the overlay's memo — cheap to clone.
    pub incoming: Vec<(usize, SharedPath)>,
}

/// Reusable buffers for [`select_candidates_with`]. One selection call
/// per probe per hop allocates a candidate-id list (for `Random`) or a
/// bounded top-`quota` list (for `Ranked`); threading one scratch
/// through a whole probing run keeps those allocations out of the hot
/// loop.
#[derive(Debug, Default)]
pub struct SelectionScratch {
    ids: Vec<ComponentId>,
    ranked: Vec<(RankKey, CandidatePlan)>,
}

/// Inputs to one hop's selection decision.
#[derive(Debug)]
pub struct HopContext<'a> {
    /// The request being composed.
    pub request: &'a Request,
    /// The vertex being assigned at this hop.
    pub vertex: VertexId,
    /// Already-assigned predecessors: `(graph edge index, component,
    /// accumulated QoS at that predecessor)`. Borrowed so the probing
    /// loop can carve contexts out of one reusable arena.
    pub predecessors: &'a [(usize, ComponentId, Qos)],
}

/// The number of candidates to probe for a function with `k` candidates at
/// probing ratio `alpha` — `⌈α·k⌉`, at least 1 when any candidate exists.
pub fn probe_quota(k: usize, alpha: f64) -> usize {
    if k == 0 {
        return 0;
    }
    ((alpha * k as f64).ceil() as usize).clamp(1, k)
}

/// Selects the candidates to probe for `ctx.vertex`.
///
/// `Ranked` consults the coarse [`GlobalStateBoard`]; `Random` touches no
/// global state (counting no board query). Both honour the interface
/// stream-rate compatibility check, which needs only statically-known
/// component interface specifications.
#[allow(clippy::too_many_arguments)] // one parameter per protocol input (Fig. 3)
pub fn select_candidates<R: Rng + ?Sized>(
    system: &mut StreamSystem,
    board: &GlobalStateBoard,
    ctx: &HopContext<'_>,
    strategy: HopSelection,
    alpha: f64,
    risk_epsilon: f64,
    rng: &mut R,
    stats: &mut OverheadStats,
) -> Vec<CandidatePlan> {
    let mut scratch = SelectionScratch::default();
    select_candidates_with(system, board, ctx, strategy, alpha, risk_epsilon, rng, stats, &mut scratch)
}

/// [`select_candidates`] with caller-provided scratch buffers; the hot
/// probing loop threads one [`SelectionScratch`] through every hop.
#[allow(clippy::too_many_arguments)] // one parameter per protocol input (Fig. 3)
pub fn select_candidates_with<R: Rng + ?Sized>(
    system: &mut StreamSystem,
    board: &GlobalStateBoard,
    ctx: &HopContext<'_>,
    strategy: HopSelection,
    alpha: f64,
    risk_epsilon: f64,
    rng: &mut R,
    stats: &mut OverheadStats,
    scratch: &mut SelectionScratch,
) -> Vec<CandidatePlan> {
    let function = ctx.request.graph.function(ctx.vertex);
    stats.discovery_lookups += 1;
    let k = system.candidates(function).len();
    let quota = probe_quota(k, alpha);
    if quota == 0 {
        return Vec::new();
    }
    let rate = ctx.request.stream_rate_kbps;
    let request = ctx.request;

    match strategy {
        HopSelection::Random => {
            // Interface compatibility and placement constraints (both
            // static specifications known without probing).
            scratch.ids.clear();
            scratch.ids.extend_from_slice(system.candidates(function));
            scratch.ids.retain(|&c| {
                let component = system.component(c);
                component.accepts_rate(rate) && request.constraints.admits(&component.attributes)
            });
            scratch.ids.shuffle(rng);
            scratch.ids.truncate(quota);
            let mut plans = Vec::with_capacity(scratch.ids.len());
            for &c in &scratch.ids {
                if let Some(plan) = plan_for(system, c, ctx) {
                    plans.push(plan);
                }
            }
            plans
        }
        HopSelection::Ranked => {
            stats.global_state_queries += 1;
            stats.selection_candidates += k as u64;
            let demand = ctx.request.vertex_demand(system.registry(), ctx.vertex);
            let acc = accumulated_over(ctx.predecessors);
            let acc_delay = acc.delay.as_secs_f64();
            let entries = board.candidate_entries(function);
            let ranked = &mut scratch.ranked;
            ranked.clear();
            for (pos, entry) in entries.iter().enumerate() {
                if ranked.len() == quota {
                    // The index walks ascending published delay, so this
                    // delay-only risk lower bound is nondecreasing: the
                    // first entry that cannot beat the kept worst ends
                    // the walk for every remaining entry too.
                    let d_lb =
                        risk_delay_lower_bound(acc_delay, entry.qos.delay.as_secs_f64(), &ctx.request.qos);
                    if cannot_beat(&ranked[ranked.len() - 1].0, d_lb, risk_epsilon) {
                        break;
                    }
                }
                stats.selection_examined += 1;
                let cid = ComponentId::new(entry.node, entry.slot);
                // Entries published before a crash/migration resolve to a
                // dead or different dense id — drop them; the live
                // replacement appears after its node's next publish.
                match system.dense_of(cid) {
                    Some(d) if d.0 == entry.dense => {}
                    _ => {
                        stats.selection_pruned_stale += 1;
                        continue;
                    }
                }
                let dense = DenseComponentId(entry.dense);
                if rate > system.dense_max_rate_kbps(dense)
                    || !request.constraints.admits(&system.dense_attributes(dense))
                {
                    stats.selection_pruned_static += 1;
                    continue;
                }
                let avail = board.node_available(entry.node);
                // Prescreen Eqs. 6–7 on published state with a neutral
                // link (link QoS only ever adds, and Eq. 8 passes at ∞
                // availability) — an exact necessary condition, so pruned
                // entries never pay for a virtual-path lookup.
                if is_unqualified(
                    acc,
                    entry.qos,
                    Qos::ZERO,
                    &ctx.request.qos,
                    &avail,
                    &demand,
                    f64::INFINITY,
                    ctx.request.bandwidth_kbps,
                ) {
                    stats.selection_prescreened += 1;
                    continue;
                }
                let Some(plan) = plan_for(system, cid, ctx) else { continue };
                let (link_qos, link_avail, acc_at) = incoming_summary(board, &plan, ctx);
                if is_unqualified(
                    acc_at,
                    entry.qos,
                    link_qos,
                    &ctx.request.qos,
                    &avail,
                    &demand,
                    link_avail,
                    ctx.request.bandwidth_kbps,
                ) {
                    continue;
                }
                let d = risk_function(acc_at, entry.qos, link_qos, &ctx.request.qos);
                let v = congestion_function(&avail, &demand, link_avail, ctx.request.bandwidth_kbps);
                stats.selection_scored += 1;
                insert_ranked(ranked, quota, RankKey::new(d, v, pos as u32, risk_epsilon), plan);
            }
            // Drain (rather than move) so the buffer's capacity is kept
            // for the next hop.
            ranked.drain(..).map(|(_, plan)| plan).collect()
        }
    }
}

/// Ranking key reproducing the §3.5 order: "Candidates with smaller
/// risk values are better; if two have similar risk values, compare
/// them by the congestion function." Raw ±ε closeness is not
/// transitive, so risks are bucketed into ε-wide bands: order by band,
/// then congestion, then raw risk (ε ≤ 0 orders strictly by risk, then
/// congestion). `pos` — the candidate-index walk position — is the
/// deterministic final tie-break, standing in for the stable sort this
/// replaces: earlier-walked entries win exact ties.
#[derive(Debug, Clone, Copy)]
struct RankKey {
    band: i64,
    d: f64,
    v: f64,
    pos: u32,
    banded: bool,
}

impl RankKey {
    fn new(d: f64, v: f64, pos: u32, risk_epsilon: f64) -> RankKey {
        RankKey { band: risk_band(d, risk_epsilon), d, v, pos, banded: risk_epsilon > 0.0 }
    }

    fn cmp(&self, other: &RankKey) -> std::cmp::Ordering {
        if self.banded {
            self.band
                .cmp(&other.band)
                .then_with(|| self.v.total_cmp(&other.v))
                .then_with(|| self.d.total_cmp(&other.d))
                .then_with(|| self.pos.cmp(&other.pos))
        } else {
            self.d
                .total_cmp(&other.d)
                .then_with(|| self.v.total_cmp(&other.v))
                .then_with(|| self.pos.cmp(&other.pos))
        }
    }
}

/// The ε-band of a risk value; `i64::MAX` for non-finite risks.
fn risk_band(d: f64, risk_epsilon: f64) -> i64 {
    if risk_epsilon <= 0.0 || !d.is_finite() {
        return if d.is_finite() { 0 } else { i64::MAX };
    }
    (d / risk_epsilon).floor().clamp(i64::MIN as f64, (i64::MAX - 1) as f64) as i64
}

/// Per-metric maximum of the predecessors' accumulated QoS — the
/// plan-independent part of [`incoming_summary`], computable before any
/// candidate work (it feeds the early-exit risk bound).
fn accumulated_over(predecessors: &[(usize, ComponentId, Qos)]) -> Qos {
    let mut acc = Qos::ZERO;
    for &(_, _, pred_acc) in predecessors {
        if pred_acc.delay > acc.delay {
            acc.delay = pred_acc.delay;
        }
        if pred_acc.loss > acc.loss {
            acc.loss = pred_acc.loss;
        }
    }
    acc
}

/// Lower bound on a candidate's risk `D` (Eq. 9) from its published
/// delay alone: the risk ratio is a max over per-metric ratios and link
/// QoS only adds, so `D ≥ ratio(acc.delay + cand.delay, req.max_delay)`
/// (same `ratio` semantics as [`Qos::risk_ratio`]).
fn risk_delay_lower_bound(acc_delay_secs: f64, entry_delay_secs: f64, req: &QosRequirement) -> f64 {
    let bound = req.max_delay.as_secs_f64();
    let value = acc_delay_secs + entry_delay_secs;
    if bound > 0.0 {
        value / bound
    } else if value == 0.0 {
        0.0
    } else {
        f64::INFINITY
    }
}

/// True when a candidate whose risk is at least `d_lb` cannot displace
/// the kept worst (`worst` orders last in a full top-`quota` list).
/// Within a band (or at equal raw risk) congestion may still win, so
/// only a *strictly* worse band/risk ends the walk.
fn cannot_beat(worst: &RankKey, d_lb: f64, risk_epsilon: f64) -> bool {
    if risk_epsilon > 0.0 {
        risk_band(d_lb, risk_epsilon) > worst.band
    } else {
        d_lb > worst.d
    }
}

/// Inserts into a bounded top-`quota` list kept ascending by
/// [`RankKey`] (worst last). Keys are unique (`pos` differs), so a
/// candidate equal-or-worse than the kept worst never enters.
fn insert_ranked(
    ranked: &mut Vec<(RankKey, CandidatePlan)>,
    quota: usize,
    key: RankKey,
    plan: CandidatePlan,
) {
    if ranked.len() == quota
        && ranked[ranked.len() - 1].0.cmp(&key) != std::cmp::Ordering::Greater
    {
        return;
    }
    let at = ranked.partition_point(|(k, _)| k.cmp(&key) == std::cmp::Ordering::Less);
    ranked.insert(at, (key, plan));
    ranked.truncate(quota);
}

/// `(risk, congestion, incoming virtual links)` for a candidate that
/// survived reachability and full qualification on a shard worker.
type ScoredItem = (f64, f64, Vec<(usize, SharedPath)>);

/// One shard worker's verdict on a `(probe, index entry)` item,
/// mirroring the sequential loop's per-entry outcomes so the
/// coordinator replay can bump the exact same counters.
enum ItemVerdict {
    /// The entry no longer resolves to a live dense id.
    Stale,
    /// Dropped by the static interface/placement filter.
    Static,
    /// Dropped by the published-state prescreen (Eqs. 6–7).
    Prescreened,
    /// The entry reached path resolution.
    Pathed {
        /// Path-memo lookups this item executed, in issue order
        /// (short-circuiting on an unreachable predecessor exactly like
        /// [`plan_for`]). The coordinator replays them through
        /// [`StreamSystem::admit_virtual_path`] so memo contents and
        /// hit/miss counters match the sequential run byte for byte —
        /// but only for items the sequential walk would actually reach.
        queries: Vec<(OverlayNodeId, OverlayNodeId, Option<SharedPath>)>,
        /// `Some(risk, congestion, incoming links)` when the candidate
        /// survived reachability and full qualification.
        scored: Option<ScoredItem>,
    },
}

/// Judges one candidate-index entry for one probe entirely read-only:
/// the same stale/static/prescreen cascade as the sequential loop,
/// then paths via memo peek or cache-neutral recompute, then the risk
/// (Eq. 9) / congestion (Eq. 10) scoring on coarse board state. Every
/// check is a pure function of system and board state, so a shard
/// worker computes exactly the bytes [`select_candidates_with`] would.
#[allow(clippy::too_many_arguments)] // mirrors the sequential loop's inputs
fn judge_item(
    system: &StreamSystem,
    board: &GlobalStateBoard,
    request: &Request,
    vertex: VertexId,
    rate: f64,
    demand: &ResourceVector,
    acc: Qos,
    predecessors: &[(usize, ComponentId, Qos)],
    entry: &IndexEntry,
) -> ItemVerdict {
    let cid = ComponentId::new(entry.node, entry.slot);
    match system.dense_of(cid) {
        Some(d) if d.0 == entry.dense => {}
        _ => return ItemVerdict::Stale,
    }
    let dense = DenseComponentId(entry.dense);
    if rate > system.dense_max_rate_kbps(dense)
        || !request.constraints.admits(&system.dense_attributes(dense))
    {
        return ItemVerdict::Static;
    }
    let avail = board.node_available(entry.node);
    if is_unqualified(
        acc,
        entry.qos,
        Qos::ZERO,
        &request.qos,
        &avail,
        demand,
        f64::INFINITY,
        request.bandwidth_kbps,
    ) {
        return ItemVerdict::Prescreened;
    }
    let overlay = system.overlay();
    let mut queries = Vec::with_capacity(predecessors.len());
    let mut incoming = Vec::with_capacity(predecessors.len());
    let mut reachable = true;
    for &(edge, pred, _) in predecessors {
        let resolved = match overlay.peek_virtual_path(pred.node, cid.node) {
            Some(entry) => entry,
            None => overlay
                .compute_virtual_path_readonly(pred.node, cid.node)
                .map(SharedPath::new),
        };
        queries.push((pred.node, cid.node, resolved.clone()));
        match resolved {
            Some(path) => incoming.push((edge, path)),
            None => {
                reachable = false;
                break;
            }
        }
    }
    if !reachable {
        return ItemVerdict::Pathed { queries, scored: None };
    }
    let plan = CandidatePlan { component: cid, incoming };
    let ctx = HopContext { request, vertex, predecessors };
    let (link_qos, link_avail, acc_at) = incoming_summary(board, &plan, &ctx);
    if is_unqualified(
        acc_at,
        entry.qos,
        link_qos,
        &request.qos,
        &avail,
        demand,
        link_avail,
        request.bandwidth_kbps,
    ) {
        return ItemVerdict::Pathed { queries, scored: None };
    }
    let d = risk_function(acc_at, entry.qos, link_qos, &request.qos);
    let v = congestion_function(&avail, demand, link_avail, request.bandwidth_kbps);
    ItemVerdict::Pathed { queries, scored: Some((d, v, plan.incoming)) }
}

/// Sharded [`HopSelection::Ranked`] selection for one whole frontier:
/// every live probe's candidate-index items fan out to the shard that
/// owns the candidate's node, run read-only behind the scatter barrier,
/// and merge on the coordinator by replaying each probe's index walk in
/// sequential order — early exit, counter bumps, path-memo admissions,
/// hit/miss accounting, rankings, and the emitted `(rank, probe, plan)`
/// proposals are byte-identical to calling [`select_candidates_with`]
/// once per probe. Items past a probe's early-exit point are judged
/// speculatively by the workers but dropped unadmitted by the replay,
/// so the memo never learns paths the sequential walk would not have
/// asked for. Ranked selection draws no randomness, which is what makes
/// the fan-out safe; `Random` selection stays sequential.
#[allow(clippy::too_many_arguments)] // mirrors the sequential entry point
pub fn select_frontier_sharded(
    system: &mut StreamSystem,
    board: &GlobalStateBoard,
    request: &Request,
    vertex: VertexId,
    pred_buf: &[(usize, ComponentId, Qos)],
    pred_ranges: &[(usize, usize)],
    alpha: f64,
    risk_epsilon: f64,
    stats: &mut OverheadStats,
    rt: &mut ShardedRuntime,
    proposals: &mut Vec<(usize, usize, CandidatePlan)>,
) {
    let function = request.graph.function(vertex);
    let n_probes = pred_ranges.len();
    stats.discovery_lookups += n_probes as u64;
    let k = system.candidates(function).len();
    let quota = probe_quota(k, alpha);
    if quota == 0 {
        return;
    }
    stats.global_state_queries += n_probes as u64;
    let rate = request.stream_rate_kbps;
    let demand = request.vertex_demand(system.registry(), vertex);
    let entries: Vec<IndexEntry> = board.candidate_entries(function).to_vec();
    // Accumulated QoS per probe — plan-independent, feeds both the
    // prescreen and the early-exit bound during replay.
    let accs: Vec<Qos> =
        pred_ranges.iter().map(|&(ps, pe)| accumulated_over(&pred_buf[ps..pe])).collect();

    // Fan out: each (probe, index entry) item goes to the shard owning
    // the candidate's node — the probe message crossing into that shard.
    let shards = rt.shards();
    let mut work: Vec<Vec<(usize, usize)>> = vec![Vec::new(); shards];
    for p in 0..n_probes {
        for (ei, entry) in entries.iter().enumerate() {
            work[rt.node_owner(entry.node)].push((p, ei));
        }
    }
    let sys: &StreamSystem = system;
    let work_ref = &work;
    let entries_ref = &entries;
    let accs_ref = &accs;
    let results: Vec<Vec<ItemVerdict>> = rt.scatter(|s| {
        work_ref[s]
            .iter()
            .map(|&(p, ei)| {
                let (ps, pe) = pred_ranges[p];
                judge_item(
                    sys,
                    board,
                    request,
                    vertex,
                    rate,
                    &demand,
                    accs_ref[p],
                    &pred_buf[ps..pe],
                    &entries_ref[ei],
                )
            })
            .collect()
    });
    let mut slots: Vec<Option<ItemVerdict>> = Vec::with_capacity(n_probes * entries.len());
    slots.resize_with(n_probes * entries.len(), || None);
    for (items, assignment) in results.into_iter().zip(&work) {
        for (item, &(p, ei)) in items.into_iter().zip(assignment) {
            slots[p * entries.len() + ei] = Some(item);
        }
    }

    // Deterministic merge: replay each probe's index walk in sequential
    // order with the same early exit, admitting path-memo entries only
    // for items the walk reaches, then emit under the per-probe quota.
    let mut ranked: Vec<(RankKey, CandidatePlan)> = Vec::new();
    for p in 0..n_probes {
        ranked.clear();
        stats.selection_candidates += k as u64;
        let acc_delay = accs[p].delay.as_secs_f64();
        for (ei, entry) in entries.iter().enumerate() {
            if ranked.len() == quota {
                let d_lb =
                    risk_delay_lower_bound(acc_delay, entry.qos.delay.as_secs_f64(), &request.qos);
                if cannot_beat(&ranked[ranked.len() - 1].0, d_lb, risk_epsilon) {
                    break;
                }
            }
            stats.selection_examined += 1;
            let verdict =
                slots[p * entries.len() + ei].take().expect("every examined item judged exactly once");
            match verdict {
                ItemVerdict::Stale => stats.selection_pruned_stale += 1,
                ItemVerdict::Static => stats.selection_pruned_static += 1,
                ItemVerdict::Prescreened => stats.selection_prescreened += 1,
                ItemVerdict::Pathed { queries, scored } => {
                    for (from, to, resolved) in queries {
                        system.admit_virtual_path(from, to, resolved);
                    }
                    if let Some((d, v, incoming)) = scored {
                        stats.selection_scored += 1;
                        let plan = CandidatePlan {
                            component: ComponentId::new(entry.node, entry.slot),
                            incoming,
                        };
                        insert_ranked(&mut ranked, quota, RankKey::new(d, v, ei as u32, risk_epsilon), plan);
                    }
                }
            }
        }
        for (rank, (_, plan)) in ranked.drain(..).enumerate() {
            proposals.push((rank, p, plan));
        }
    }
}

/// Builds the candidate's plan: virtual links from every assigned
/// predecessor. `None` when some predecessor cannot reach the candidate.
fn plan_for(system: &mut StreamSystem, component: ComponentId, ctx: &HopContext<'_>) -> Option<CandidatePlan> {
    let mut incoming = Vec::with_capacity(ctx.predecessors.len());
    for &(edge, pred, _) in ctx.predecessors {
        let path = system.virtual_path(pred.node, component.node)?;
        incoming.push((edge, path));
    }
    Some(CandidatePlan { component, incoming })
}

/// Summarises the incoming virtual links under **coarse** state: the
/// worst-branch `(link QoS, bottleneck availability, accumulated QoS at
/// arrival excluding the candidate itself)`.
fn incoming_summary(board: &GlobalStateBoard, plan: &CandidatePlan, ctx: &HopContext<'_>) -> (Qos, f64, Qos) {
    if ctx.predecessors.is_empty() {
        return (Qos::ZERO, f64::INFINITY, Qos::ZERO);
    }
    let mut worst_link = Qos::ZERO;
    let mut min_avail = f64::INFINITY;
    let mut acc = Qos::ZERO;
    for (i, &(_, _, pred_acc)) in ctx.predecessors.iter().enumerate() {
        let path = &plan.incoming[i].1;
        let link_qos = Qos::new(path.delay, LossRate::from_probability(path.loss_rate));
        min_avail = min_avail.min(board.path_available(path));
        if link_qos.delay > worst_link.delay {
            worst_link.delay = link_qos.delay;
        }
        if link_qos.loss > worst_link.loss {
            worst_link.loss = link_qos.loss;
        }
        let branch = pred_acc; // candidate + link added by caller formulas
        if branch.delay > acc.delay {
            acc.delay = branch.delay;
        }
        if branch.loss > acc.loss {
            acc.loss = branch.loss;
        }
    }
    (worst_link, min_avail, acc)
}

/// Precise arrival accumulation at a candidate: per-metric maximum over
/// incoming branches of `acc(pred) + q(link)`, plus the candidate's own
/// (precise) QoS. Used by the per-hop probe processing.
pub fn arrival_accumulated(plan: &CandidatePlan, ctx: &HopContext<'_>, candidate_qos: Qos) -> Qos {
    let mut worst = Qos::ZERO;
    if ctx.predecessors.is_empty() {
        return candidate_qos;
    }
    for (i, &(_, _, pred_acc)) in ctx.predecessors.iter().enumerate() {
        let path = &plan.incoming[i].1;
        let link_qos = Qos::new(path.delay, LossRate::from_probability(path.loss_rate));
        let branch = pred_acc + link_qos;
        if branch.delay > worst.delay {
            worst.delay = branch.delay;
        }
        if branch.loss > worst.loss {
            worst.loss = branch.loss;
        }
    }
    worst + candidate_qos
}

#[cfg(test)]
mod tests {
    use super::*;
    use acp_state::GlobalStateConfig;
    use acp_topology::{InetConfig, Overlay, OverlayConfig, OverlayNodeId};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn build() -> (StreamSystem, GlobalStateBoard) {
        let mut rng = StdRng::seed_from_u64(17);
        let ip = InetConfig { nodes: 200, ..InetConfig::default() }.generate(&mut rng);
        let overlay = Overlay::build(&ip, &OverlayConfig { stream_nodes: 30, neighbors: 4 }, &mut rng);
        let sys = StreamSystem::generate(
            overlay,
            FunctionRegistry::standard(),
            &SystemConfig::default(),
            &mut rng,
        );
        let board = GlobalStateBoard::new(&sys, GlobalStateConfig::default());
        (sys, board)
    }

    fn request_for(sys: &StreamSystem) -> Request {
        let fns: Vec<FunctionId> =
            sys.registry().ids().filter(|&f| sys.candidates(f).len() >= 3).take(2).collect();
        assert_eq!(fns.len(), 2);
        Request {
            id: RequestId(7),
            graph: FunctionGraph::path(fns),
            qos: QosRequirement::unconstrained(),
            base_resources: ResourceVector::new(0.5, 2.0),
            bandwidth_kbps: 5.0,
            stream_rate_kbps: 100.0,
            constraints: PlacementConstraints::none(),
            tenant: None,
        }
    }

    #[test]
    fn quota_formula_matches_paper() {
        // "if there are ten candidate components … and the probing ratio
        // α = 0.3, then we can probe 0.3 × 10 = 3 candidates"
        assert_eq!(probe_quota(10, 0.3), 3);
        assert_eq!(probe_quota(10, 1.0), 10);
        assert_eq!(probe_quota(10, 0.01), 1, "at least one probe");
        assert_eq!(probe_quota(0, 0.5), 0);
        assert_eq!(probe_quota(7, 0.3), 3); // ceil(2.1)
    }

    #[test]
    fn ranked_selection_respects_quota_and_function() {
        let (mut sys, board) = build();
        let request = request_for(&sys);
        let ctx = HopContext { request: &request, vertex: 0, predecessors: &[] };
        let mut rng = StdRng::seed_from_u64(1);
        let mut stats = OverheadStats::new();
        let k = sys.candidates(request.graph.function(0)).len();
        let plans = select_candidates(&mut sys, &board, &ctx, HopSelection::Ranked, 0.5, 0.05, &mut rng, &mut stats);
        assert!(!plans.is_empty());
        assert!(plans.len() <= probe_quota(k, 0.5));
        for p in &plans {
            assert_eq!(sys.component(p.component).function, request.graph.function(0));
            assert!(p.incoming.is_empty(), "source vertex has no incoming link");
        }
        assert_eq!(stats.discovery_lookups, 1);
        assert_eq!(stats.global_state_queries, 1);
    }

    #[test]
    fn random_selection_skips_board() {
        let (mut sys, board) = build();
        let request = request_for(&sys);
        let ctx = HopContext { request: &request, vertex: 0, predecessors: &[] };
        let mut rng = StdRng::seed_from_u64(2);
        let mut stats = OverheadStats::new();
        let plans = select_candidates(&mut sys, &board, &ctx, HopSelection::Random, 0.5, 0.05, &mut rng, &mut stats);
        assert!(!plans.is_empty());
        assert_eq!(stats.global_state_queries, 0, "RP never queries the global state");
    }

    #[test]
    fn ranked_prefers_less_loaded_nodes() {
        let (mut sys, board) = build();
        let request = request_for(&sys);
        let f = request.graph.function(0);
        let mut rng = StdRng::seed_from_u64(3);
        let mut stats = OverheadStats::new();
        let ctx = HopContext { request: &request, vertex: 0, predecessors: &[] };
        let plans = select_candidates(&mut sys, &board, &ctx, HopSelection::Ranked, 0.3, 0.05, &mut rng, &mut stats);
        let quota = probe_quota(sys.candidates(f).len(), 0.3);
        assert_eq!(plans.len(), quota.min(plans.len()));
        // the selected set should not contain a candidate strictly worse
        // (higher risk and congestion) than an unselected one
        // — verified indirectly: selected candidates are qualified.
        for p in &plans {
            assert!(board.node_available(p.component.node).dominates(&request.vertex_demand(sys.registry(), 0)));
        }
    }

    #[test]
    fn second_hop_carries_virtual_links() {
        let (mut sys, board) = build();
        let request = request_for(&sys);
        let first = sys.candidates(request.graph.function(0))[0];
        let ctx = HopContext {
            request: &request,
            vertex: 1,
            predecessors: &[(0, first, Qos::ZERO)],
        };
        let mut rng = StdRng::seed_from_u64(4);
        let mut stats = OverheadStats::new();
        let plans = select_candidates(&mut sys, &board, &ctx, HopSelection::Ranked, 1.0, 0.05, &mut rng, &mut stats);
        assert!(!plans.is_empty());
        for p in &plans {
            assert_eq!(p.incoming.len(), 1);
            let (edge, path) = &p.incoming[0];
            assert_eq!(*edge, 0);
            if p.component.node == first.node {
                assert!(path.is_colocated());
            } else {
                assert_eq!(path.nodes.first(), Some(&first.node));
                assert_eq!(path.nodes.last(), Some(&p.component.node));
            }
        }
    }

    #[test]
    fn incompatible_rate_filters_everything() {
        let (mut sys, board) = build();
        let mut request = request_for(&sys);
        request.stream_rate_kbps = 1e12; // no interface accepts this
        let ctx = HopContext { request: &request, vertex: 0, predecessors: &[] };
        let mut rng = StdRng::seed_from_u64(5);
        let mut stats = OverheadStats::new();
        let plans = select_candidates(&mut sys, &board, &ctx, HopSelection::Ranked, 1.0, 0.05, &mut rng, &mut stats);
        assert!(plans.is_empty());
    }

    #[test]
    fn arrival_accumulated_takes_worst_branch() {
        let path_a = SharedPath::new(acp_topology::OverlayPath::colocated(OverlayNodeId(0)));
        let request = Request {
            id: RequestId(1),
            graph: FunctionGraph::path(vec![FunctionId(0), FunctionId(1)]),
            qos: QosRequirement::unconstrained(),
            base_resources: ResourceVector::ZERO,
            bandwidth_kbps: 0.0,
            stream_rate_kbps: 0.0,
            constraints: PlacementConstraints::none(),
            tenant: None,
        };
        let slow = Qos::from_delay(acp_simcore::SimDuration::from_millis(40));
        let fast = Qos::from_delay(acp_simcore::SimDuration::from_millis(2));
        let ctx = HopContext {
            request: &request,
            vertex: 1,
            predecessors: &[
                (0, ComponentId::new(OverlayNodeId(0), 0), slow),
                (1, ComponentId::new(OverlayNodeId(0), 1), fast),
            ],
        };
        let plan = CandidatePlan {
            component: ComponentId::new(OverlayNodeId(0), 2),
            incoming: vec![(0, path_a.clone()), (1, path_a)],
        };
        let cand = Qos::from_delay(acp_simcore::SimDuration::from_millis(3));
        let acc = arrival_accumulated(&plan, &ctx, cand);
        assert_eq!(acc.delay, acp_simcore::SimDuration::from_millis(43));
    }
}
