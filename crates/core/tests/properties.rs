//! Property-based tests of the probing protocol's invariants.

use acp_core::prelude::*;
use acp_model::prelude::*;
use acp_simcore::{SimDuration, SimTime};
use acp_state::{GlobalStateBoard, GlobalStateConfig};
use acp_topology::{InetConfig, Overlay, OverlayConfig, OverlayNodeId};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Builds a small system + board from a seed.
fn build(seed: u64) -> (StreamSystem, GlobalStateBoard) {
    let mut rng = StdRng::seed_from_u64(seed);
    let ip = InetConfig { nodes: 200, ..InetConfig::default() }.generate(&mut rng);
    let overlay = Overlay::build(&ip, &OverlayConfig { stream_nodes: 25, neighbors: 4 }, &mut rng);
    let system = StreamSystem::generate(
        overlay,
        FunctionRegistry::with_size(20),
        &SystemConfig::default(),
        &mut rng,
    );
    let board = GlobalStateBoard::new(&system, GlobalStateConfig::default());
    (system, board)
}

/// Builds a random path request over hosted functions.
fn random_request(system: &StreamSystem, seed: u64, id: u64) -> Request {
    let mut rng = StdRng::seed_from_u64(seed);
    use rand::seq::SliceRandom;
    use rand::Rng;
    let mut fns: Vec<FunctionId> =
        system.registry().ids().filter(|&f| !system.candidates(f).is_empty()).collect();
    fns.shuffle(&mut rng);
    let len = rng.gen_range(1..=4.min(fns.len()));
    Request {
        id: RequestId(id),
        graph: FunctionGraph::path(fns.into_iter().take(len).collect()),
        qos: QosRequirement::new(
            SimDuration::from_millis(rng.gen_range(50..600)),
            LossRate::from_probability(rng.gen_range(0.01..0.2)),
        ),
        base_resources: ResourceVector::new(rng.gen_range(0.1..4.0), rng.gen_range(1.0..32.0)),
        bandwidth_kbps: rng.gen_range(1.0..200.0),
        stream_rate_kbps: rng.gen_range(10.0..700.0),
        constraints: PlacementConstraints::none(),
        tenant: None,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Whatever the request and probing ratio, probing leaves no
    /// transient residue and, on success, the session's composition is
    /// structurally valid and qualified against the pre-admission state.
    #[test]
    fn probing_is_clean_and_sound(
        sys_seed in 0u64..4,
        req_seed in any::<u64>(),
        alpha in 0.05f64..1.0,
    ) {
        let (system0, board) = build(sys_seed);
        let mut system = system0.clone();
        let request = random_request(&system, req_seed, 1);
        let mut composer = AcpComposer::new(
            ProbingConfig { probing_ratio: alpha, ..ProbingConfig::default() },
            req_seed,
        );
        let out = composer.compose(&mut system, &board, &request, SimTime::ZERO);
        // no transient residue, ever
        for v in system.overlay().nodes() {
            prop_assert_eq!(system.node(v).transient_count(), 0);
        }
        match out.session {
            Some(sid) => {
                let composition = system.session(sid).unwrap().composition.clone();
                prop_assert!(composition.is_shape_valid(&request.graph));
                let mut pre = system0;
                pre.release_request_transients(request.id);
                prop_assert!(pre.qualify(&request, &composition).is_ok());
            }
            None => {
                prop_assert_eq!(system.session_count(), 0);
            }
        }
    }

    /// A higher probing ratio never sends fewer probe messages (same
    /// request, same system, same RNG seed).
    #[test]
    fn probe_traffic_is_monotone_in_alpha(
        sys_seed in 0u64..4,
        req_seed in any::<u64>(),
        lo in 0.05f64..0.5,
        delta in 0.1f64..0.5,
    ) {
        let (system0, board) = build(sys_seed);
        let request = random_request(&system0, req_seed, 2);
        let run = |alpha: f64| {
            let mut system = system0.clone();
            let mut composer = AcpComposer::new(
                ProbingConfig { probing_ratio: alpha, ..ProbingConfig::default() },
                7,
            );
            composer.compose(&mut system, &board, &request, SimTime::ZERO).stats.probes_spawned
        };
        let low = run(lo);
        let high = run((lo + delta).min(1.0));
        prop_assert!(high >= low, "α↑ should probe at least as much: {low} vs {high}");
    }

    /// ACP success implies exhaustive-search success (approximation
    /// soundness), for arbitrary requests.
    #[test]
    fn acp_never_beats_optimal_feasibility(
        sys_seed in 0u64..3,
        req_seed in any::<u64>(),
    ) {
        let (system0, board) = build(sys_seed);
        let request = random_request(&system0, req_seed, 3);
        let mut acp_sys = system0.clone();
        let mut acp = AcpComposer::new(ProbingConfig::default(), 5);
        let acp_ok = acp.compose(&mut acp_sys, &board, &request, SimTime::ZERO).session.is_some();
        if acp_ok {
            let mut opt_sys = system0;
            let mut opt = OptimalComposer::new(OptimalConfig::default());
            let opt_ok = opt.compose(&mut opt_sys, &board, &request, SimTime::ZERO).session.is_some();
            prop_assert!(opt_ok, "optimal must admit whatever ACP admits");
        }
    }

    /// Per-function quota: probes spawned at any single vertex never
    /// exceed ⌈α·k⌉ — verified through the total across a path request
    /// (sum over vertices of per-vertex quotas bounds the spawn count).
    #[test]
    fn quota_bounds_spawned_probes(
        sys_seed in 0u64..4,
        req_seed in any::<u64>(),
        alpha in 0.05f64..1.0,
    ) {
        let (system0, board) = build(sys_seed);
        let mut system = system0.clone();
        let request = random_request(&system, req_seed, 4);
        let quota_sum: u64 = request
            .graph
            .vertices()
            .map(|v| probe_quota(system.candidates(request.graph.function(v)).len(), alpha) as u64)
            .sum();
        let mut composer = AcpComposer::new(
            ProbingConfig { probing_ratio: alpha, ..ProbingConfig::default() },
            9,
        );
        let out = composer.compose(&mut system, &board, &request, SimTime::ZERO);
        prop_assert!(
            out.stats.probes_spawned <= quota_sum,
            "spawned {} exceeds Σ quotas {quota_sum}",
            out.stats.probes_spawned
        );
    }

    /// However hard it churns, the rebalancer never violates the
    /// distinct-functions-per-node invariant (or any other audited
    /// invariant): the [`SystemAuditor`] stays clean after every round.
    #[test]
    fn rebalancer_preserves_audited_invariants(
        sys_seed in 0u64..4,
        load_seed in any::<u64>(),
        gap in 0.05f64..0.6,
        rounds in 1usize..4,
    ) {
        let (mut system, board) = build(sys_seed);
        // Put uneven load on the system so the rebalancer has work.
        let mut composer = AcpComposer::new(ProbingConfig::default(), load_seed);
        for i in 0..12u64 {
            let request = random_request(&system, load_seed.wrapping_add(i), 100 + i);
            let _ = composer.compose(&mut system, &board, &request, SimTime::ZERO);
        }
        let mut rebalancer = Rebalancer::new(RebalanceConfig {
            min_utilization_gap: gap,
            max_migrations_per_round: 6,
        });
        let auditor = SystemAuditor::default();
        for _ in 0..rounds {
            rebalancer.rebalance_round(&mut system);
            let report = auditor.audit(&system);
            prop_assert!(report.is_clean(), "audit after rebalance:\n{report}");
        }
    }

    /// The rebalancer only ever moves *idle* components: every component
    /// serving a live session keeps its exact identity (node and slot)
    /// across any number of rounds.
    #[test]
    fn rebalancer_never_moves_serving_components(
        sys_seed in 0u64..4,
        load_seed in any::<u64>(),
        rounds in 1usize..4,
    ) {
        let (mut system, board) = build(sys_seed);
        let mut composer = AcpComposer::new(ProbingConfig::default(), load_seed);
        for i in 0..12u64 {
            let request = random_request(&system, load_seed.wrapping_add(i), 200 + i);
            let _ = composer.compose(&mut system, &board, &request, SimTime::ZERO);
        }
        let serving: Vec<(SessionId, Vec<ComponentId>)> = system
            .sessions()
            .map(|s| (s.id, s.composition.assignment.clone()))
            .collect();
        let mut rebalancer = Rebalancer::new(RebalanceConfig {
            min_utilization_gap: 0.05,
            max_migrations_per_round: 8,
        });
        let mut moved = Vec::new();
        for _ in 0..rounds {
            moved.extend(rebalancer.rebalance_round(&mut system));
        }
        for (sid, assignment) in serving {
            let session = system.session(sid).expect("rebalancing never ends sessions");
            prop_assert_eq!(&session.composition.assignment, &assignment);
            for id in assignment {
                prop_assert!(
                    system.node(id.node).component(id.slot).is_some(),
                    "serving component {id} was tombstoned"
                );
                prop_assert!(
                    moved.iter().all(|m| m.from != id),
                    "rebalancer moved serving component {id}"
                );
            }
        }
    }

    /// Migration preserves the total candidate pool of every function.
    #[test]
    fn migration_conserves_candidates(sys_seed in 0u64..4, pick in any::<u64>()) {
        let (mut system, _board) = build(sys_seed);
        let totals: std::collections::HashMap<FunctionId, usize> =
            system.registry().ids().map(|f| (f, system.candidates(f).len())).collect();
        // migrate an arbitrary idle component somewhere feasible
        let nodes: Vec<OverlayNodeId> = system.overlay().nodes().collect();
        let source = nodes[(pick as usize) % nodes.len()];
        let component = system.node(source).components().next().cloned();
        if let Some(component) = component {
            let target = nodes
                .iter()
                .copied()
                .find(|&v| v != source && !system.node(v).hosts_function(component.function));
            if let Some(target) = target {
                let _ = system.migrate_component(component.id, target);
            }
        }
        for (f, count) in totals {
            prop_assert_eq!(system.candidates(f).len(), count);
        }
    }

    /// The α-escalator's invariants under any failure/success sequence:
    /// the ratio never leaves `[base, max_ratio]`, a failure never
    /// shrinks it, and any success resets it to the base exactly.
    #[test]
    fn alpha_escalator_stays_bounded_and_resets(
        base in 0.01f64..1.0,
        factor in 1.0f64..4.0,
        headroom in 0.0f64..2.0,
        events in proptest::collection::vec(any::<bool>(), 0..64),
    ) {
        let cap = base + headroom;
        let mut esc = AlphaEscalator::new(base, EscalationConfig { factor, max_ratio: cap });
        prop_assert_eq!(esc.ratio(), base, "fresh escalator starts at the base");
        let mut prev = esc.ratio();
        for &failed in &events {
            if failed {
                esc.record_failure();
                prop_assert!(
                    esc.ratio() >= prev - 1e-12,
                    "a failure must not shrink the ratio: {} -> {}",
                    prev,
                    esc.ratio()
                );
            } else {
                esc.record_success();
                prop_assert_eq!(esc.ratio(), base, "success must reset to the base");
                prop_assert_eq!(esc.consecutive_failures(), 0);
            }
            let ratio = esc.ratio();
            prop_assert!(ratio >= base - 1e-12, "ratio {} undercut base {}", ratio, base);
            prop_assert!(ratio <= cap + 1e-12, "ratio {} exceeded cap {}", ratio, cap);
            prev = ratio;
        }
    }
}
