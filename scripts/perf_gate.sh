#!/usr/bin/env bash
# Perf-ratio gate: regenerate the quick perf snapshot and fail when
# `total_points_per_sec` drops more than PERF_TOLERANCE_PCT below the
# committed baseline (BENCH_baseline.json).
#
# Methodology (see EXPERIMENTS.md):
#   * quick scale, seed 42, ACP_BENCH_THREADS=1 — the configuration the
#     baseline was recorded under, so the ratio compares like with like.
#   * PERF_REPEAT (default 3) runs per figure, medians reported — a
#     single noisy iteration cannot trip the gate.
#   * 10% default tolerance: same-machine medians vary by a few percent
#     run to run; a >10% drop has always been a real regression in this
#     repo's history (PR 5 cost ~20% before it was recovered).
#
# The baseline is machine-relative. After an intentional perf change,
# re-record it by running the snapshot at least three times under
# typical machine load and committing the run with the MEDIAN
# total_points_per_sec (a single quiet-moment run makes the floor too
# hot and the gate flaky):
#   ACP_BENCH_THREADS=1 cargo run --release -q -p acp-bench --bin perf_snapshot -- \
#     --scale quick --seed 42 --repeat 3 --out-file BENCH_baseline.json
#
# Env overrides: PERF_BASELINE, PERF_TOLERANCE_PCT, PERF_REPEAT.
set -euo pipefail
cd "$(dirname "$0")/.."

BASELINE="${PERF_BASELINE:-BENCH_baseline.json}"
TOLERANCE_PCT="${PERF_TOLERANCE_PCT:-10}"
REPEAT="${PERF_REPEAT:-3}"

if [[ ! -f "$BASELINE" ]]; then
    echo "perf gate: baseline '$BASELINE' not found" >&2
    exit 1
fi

extract_pps() {
    # total_points_per_sec from a snapshot JSON (one-key-per-line format).
    grep -o '"total_points_per_sec":[[:space:]]*[0-9.]*' "$1" | awk -F: '{gsub(/ /,"",$2); print $2}'
}

SNAPSHOT="$(mktemp /tmp/perf_gate_snapshot.XXXXXX.json)"
trap 'rm -f "$SNAPSHOT"' EXIT

ACP_BENCH_THREADS=1 cargo run --release -q -p acp-bench --bin perf_snapshot -- \
    --scale quick --seed 42 --repeat "$REPEAT" --out-file "$SNAPSHOT"

# A fresh snapshot with keys the baseline lacks means the snapshot
# format grew (new figure rows, new sections) since the baseline was
# recorded — the ratio below would silently compare different workloads.
# Fail loudly and ask for a re-record instead.
json_keys() {
    grep -o '"[a-zA-Z_0-9]*":' "$1" | sort -u
}
missing_keys="$(comm -13 <(json_keys "$BASELINE") <(json_keys "$SNAPSHOT"))"
if [[ -n "$missing_keys" ]]; then
    echo "perf gate: FAIL — baseline '$BASELINE' lacks key(s) the fresh snapshot has:" >&2
    echo "$missing_keys" | sed 's/^/    /' >&2
    echo "perf gate: the snapshot format changed since the baseline was recorded." >&2
    echo "perf gate: re-record it (median of >=3 runs under typical load):" >&2
    echo "    ACP_BENCH_THREADS=1 cargo run --release -q -p acp-bench --bin perf_snapshot -- \\" >&2
    echo "        --scale quick --seed 42 --repeat 3 --out-file $BASELINE" >&2
    exit 1
fi

baseline_pps="$(extract_pps "$BASELINE")"
current_pps="$(extract_pps "$SNAPSHOT")"

if [[ -z "$baseline_pps" || -z "$current_pps" ]]; then
    echo "perf gate: failed to extract total_points_per_sec (baseline='$baseline_pps', current='$current_pps')" >&2
    exit 1
fi

awk -v cur="$current_pps" -v base="$baseline_pps" -v tol="$TOLERANCE_PCT" '
BEGIN {
    floor = base * (1 - tol / 100);
    ratio_pct = (cur / base - 1) * 100;
    printf "perf gate: current %.3f pts/s vs baseline %.3f pts/s (%+.1f%%, tolerance -%s%%)\n",
        cur, base, ratio_pct, tol;
    if (cur < floor) {
        printf "perf gate: FAIL — throughput below the %.3f pts/s floor\n", floor;
        exit 1;
    }
    print "perf gate: OK";
}'
