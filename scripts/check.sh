#!/usr/bin/env bash
# Repo-wide gate: build, tests, lints, and the parallel-driver
# determinism regression. Run from the repository root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release --workspace"
cargo build --release --workspace

echo "==> cargo test -q --workspace"
cargo test -q --workspace

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> determinism regression (sequential vs 4 threads)"
cargo test -q -p acp-bench --test determinism

echo "==> incremental-vs-full global-state equivalence regression"
cargo test -q -p acp-bench --test equivalence

echo "==> chaos harness: fault-plan determinism + audit regressions"
cargo test -q -p acp-bench --test chaos
cargo test -q --test failover

echo "==> sharded-runtime determinism/equivalence suite"
cargo test -q -p acp-bench --test sharding

echo "==> tenant-isolation property battery"
cargo test -q -p acp-model --test properties
cargo test -q --test tenants

echo "==> chaos smoke (quick grid, seed 42, audit must be clean)"
cargo run --release -q -p acp-bench --bin chaos_soak -- --smoke --seed 42 --assert-no-leaks

echo "==> sharded chaos smoke (shards=4, byte-identical by contract)"
cargo run --release -q -p acp-bench --bin chaos_soak -- --smoke --seed 42 --shards 4 --assert-no-leaks

echo "==> tenanted chaos smoke (standard mix, isolation must hold)"
cargo run --release -q -p acp-bench --bin chaos_soak -- --smoke --seed 42 --tenants --assert-no-leaks

echo "==> fig_scale smoke (10k nodes x 50k sessions, RSS ceiling)"
cargo run --release -q -p acp-bench --bin scale_smoke

echo "==> perf-ratio gate (quick snapshot vs BENCH_baseline.json)"
bash scripts/perf_gate.sh

echo "==> criterion benches compile"
cargo bench --workspace --no-run

echo "All checks passed."
