#!/usr/bin/env bash
# Repo-wide gate: build, tests, lints, and the parallel-driver
# determinism regression. Run from the repository root.
# Each step is timed; a per-step and total wall-clock summary prints at
# the end so slow steps are easy to spot.
set -euo pipefail
cd "$(dirname "$0")/.."

STEP_NAMES=()
STEP_SECS=()
TOTAL_START=$SECONDS

step() {
    local name="$1"
    shift
    echo "==> $name"
    local start=$SECONDS
    "$@"
    local secs=$((SECONDS - start))
    STEP_NAMES+=("$name")
    STEP_SECS+=("$secs")
    echo "    (${secs}s)"
}

step "cargo build --release --workspace" \
    cargo build --release --workspace

step "cargo test -q --workspace" \
    cargo test -q --workspace

step "cargo clippy --workspace --all-targets -- -D warnings" \
    cargo clippy --workspace --all-targets -- -D warnings

step "determinism regression (sequential vs 4 threads)" \
    cargo test -q -p acp-bench --test determinism

step "incremental-vs-full global-state equivalence regression" \
    cargo test -q -p acp-bench --test equivalence

step "chaos harness: fault-plan determinism + audit regressions" \
    cargo test -q -p acp-bench --test chaos
step "failover regression" \
    cargo test -q --test failover

step "sharded-runtime determinism/equivalence suite" \
    cargo test -q -p acp-bench --test sharding

step "tenant-isolation property battery" \
    cargo test -q -p acp-model --test properties
step "tenant scenario battery" \
    cargo test -q --test tenants

step "chaos smoke (quick grid, seed 42, audit must be clean)" \
    cargo run --release -q -p acp-bench --bin chaos_soak -- --smoke --seed 42 --assert-no-leaks

step "sharded chaos smoke (shards=4, byte-identical by contract)" \
    cargo run --release -q -p acp-bench --bin chaos_soak -- --smoke --seed 42 --shards 4 --assert-no-leaks

step "tenanted chaos smoke (standard mix, isolation must hold)" \
    cargo run --release -q -p acp-bench --bin chaos_soak -- --smoke --seed 42 --tenants --assert-no-leaks

step "repair smoke (repair must dominate restart survival, audit clean)" \
    cargo run --release -q -p acp-bench --bin chaos_soak -- --smoke --seed 42 --repair --assert-no-leaks

step "fig_scale smoke (10k nodes x 50k sessions, RSS ceiling)" \
    cargo run --release -q -p acp-bench --bin scale_smoke

step "perf-ratio gate (quick snapshot vs BENCH_baseline.json)" \
    bash scripts/perf_gate.sh

step "criterion benches compile" \
    cargo bench --workspace --no-run

echo
echo "Step timings:"
for i in "${!STEP_NAMES[@]}"; do
    printf '  %4ss  %s\n' "${STEP_SECS[$i]}" "${STEP_NAMES[$i]}"
done
printf 'Total: %ss\n' "$((SECONDS - TOTAL_START))"
echo "All checks passed."
